// Memory accounting for the compact SAX representation on the paper's real
// fixtures (§5.1 Google operations, Table 1 Amazon search): the arena form
// must cost at most half the legacy string-soup bytes on the GoogleSearch
// response and never more on any fixture — under the honest memory_size()
// accounting (heap capacities + per-block overhead, SSO strings free).
#include <gtest/gtest.h>

#include "bench/common.hpp"
#include "core/cached_value.hpp"
#include "reflect/algorithms.hpp"
#include "services/amazon/service.hpp"
#include "soap/serializer.hpp"
#include "xml/sax_parser.hpp"

namespace wsc::cache {
namespace {

using bench::CaptureScratch;
using bench::OperationCase;

const std::vector<OperationCase>& cases() {
  static const std::vector<OperationCase> c = bench::google_cases();
  return c;
}

std::unique_ptr<CachedValue> value_for(const OperationCase& c,
                                       Representation rep,
                                       CaptureScratch& scratch) {
  ResponseCapture capture = c.capture_copy(scratch);
  return make_cached_value(rep, capture);
}

TEST(CompactValueFootprintTest, AtMostHalfOfLegacyOnGoogleSearch) {
  // The ISSUE acceptance bar: >= 2x lower memory_size() on the large,
  // complex GoogleSearch response (few distinct QNames, many repeats).
  const OperationCase& search = cases()[2];
  CaptureScratch s1, s2;
  auto legacy = value_for(search, Representation::SaxEvents, s1);
  auto compact = value_for(search, Representation::SaxEventsCompact, s2);
  EXPECT_LE(compact->memory_size() * 2, legacy->memory_size())
      << "compact=" << compact->memory_size()
      << " legacy=" << legacy->memory_size();
}

TEST(CompactValueFootprintTest, NeverLargerThanLegacyOnAnyGoogleFixture) {
  for (const OperationCase& c : cases()) {
    CaptureScratch s1, s2;
    auto legacy = value_for(c, Representation::SaxEvents, s1);
    auto compact = value_for(c, Representation::SaxEventsCompact, s2);
    EXPECT_LE(compact->memory_size(), legacy->memory_size()) << c.display;
  }
}

TEST(CompactValueFootprintTest, SequencesAgreeWithValueAccounting) {
  // The CachedValue wrapper adds only its own fixed header to the
  // sequence's self-reported footprint.
  const OperationCase& search = cases()[2];
  CaptureScratch s;
  auto compact = value_for(search, Representation::SaxEventsCompact, s);
  EXPECT_GE(compact->memory_size(),
            search.response_compact_events.memory_size());
  EXPECT_LE(compact->memory_size(),
            search.response_compact_events.memory_size() + 256);
}

TEST(CompactValueTest, RetrieveEqualsOriginalOnGoogleFixtures) {
  for (const OperationCase& c : cases()) {
    CaptureScratch s;
    auto compact = value_for(c, Representation::SaxEventsCompact, s);
    EXPECT_TRUE(reflect::deep_equals(compact->retrieve(), c.response_object))
        << c.display;
  }
}

TEST(CompactValueTest, FactoryRequiresCompactCapture) {
  const OperationCase& c = cases()[0];
  CaptureScratch s;
  ResponseCapture capture = c.capture_copy(s);
  capture.compact_events = nullptr;  // middleware recorded no compact form
  EXPECT_THROW(make_cached_value(Representation::SaxEventsCompact, capture),
               Error);
}

TEST(CompactValueFootprintTest, AmazonSearchFixture) {
  // The Table-1 service: a KeywordSearch response (bean with a repeated
  // item list) behaves like GoogleSearch — compact at most half.
  services::amazon::AmazonBackend backend;
  auto desc = services::amazon::amazon_description();
  std::shared_ptr<const wsdl::OperationInfo> op{
      desc, &desc->require_operation("KeywordSearch")};
  reflect::Object response = reflect::Object::make(
      backend.search("KeywordSearch", "web services caching", 1));
  std::string xml =
      soap::serialize_response(*op, "urn:PI/DevCentral/SoapAPI", response);

  xml::EventRecorder legacy_rec;
  xml::CompactEventRecorder compact_rec;
  xml::TeeHandler tee(legacy_rec, compact_rec);
  xml::SaxParser{}.parse(xml, tee);
  xml::EventSequence legacy = legacy_rec.take();
  xml::CompactEventSequence compact = compact_rec.take();

  EXPECT_LE(compact.memory_size() * 2, legacy.memory_size())
      << "compact=" << compact.memory_size()
      << " legacy=" << legacy.memory_size();

  // And the compact value still round-trips the Amazon bean.
  ResponseCapture capture;
  capture.response_xml = &xml;
  capture.compact_events = &compact;
  capture.object = response;
  capture.op = op;
  auto value = make_cached_value(Representation::SaxEventsCompact, capture);
  EXPECT_TRUE(reflect::deep_equals(value->retrieve(), response));
}

}  // namespace
}  // namespace wsc::cache
