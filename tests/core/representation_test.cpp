// Applicability matrix (Table 3) and the §6 auto-selector.
#include "core/representation.hpp"

#include <gtest/gtest.h>

#include "services/google/types.hpp"
#include "tests/reflect/test_types.hpp"

namespace wsc::cache {
namespace {

using reflect::type_of;
using reflect::testing::ensure_test_types;
using reflect::testing::NoClone;
using reflect::testing::NoSerialize;
using reflect::testing::Opaque;
using reflect::testing::Polygon;
using reflect::testing::Token;

struct RepresentationFixture : ::testing::Test {
  void SetUp() override {
    ensure_test_types();
    services::google::ensure_google_types();
  }
};

TEST_F(RepresentationFixture, XmlAndSaxApplyToEverything) {
  for (const reflect::TypeInfo* t :
       {&type_of<std::string>(), &type_of<std::vector<std::uint8_t>>(),
        &type_of<Polygon>(), &type_of<Opaque>(), &type_of<NoSerialize>()}) {
    EXPECT_TRUE(applicable(Representation::XmlMessage, *t, false)) << t->name;
    EXPECT_TRUE(applicable(Representation::SaxEvents, *t, false)) << t->name;
  }
}

TEST_F(RepresentationFixture, SerializedNeedsDeepSerializability) {
  EXPECT_TRUE(applicable(Representation::Serialized, type_of<Polygon>(), false));
  EXPECT_TRUE(applicable(Representation::Serialized, type_of<std::string>(), false));
  EXPECT_FALSE(applicable(Representation::Serialized, type_of<NoSerialize>(), false));
  EXPECT_FALSE(
      applicable(Representation::Serialized, type_of<reflect::testing::Wrapper>(), false));
}

TEST_F(RepresentationFixture, ReflectionNeedsBeanOrArray) {
  EXPECT_TRUE(applicable(Representation::ReflectionCopy, type_of<Polygon>(), false));
  EXPECT_TRUE(applicable(Representation::ReflectionCopy,
                         type_of<std::vector<std::uint8_t>>(), false));
  EXPECT_TRUE(applicable(Representation::ReflectionCopy,
                         type_of<std::vector<std::string>>(), false));
  EXPECT_FALSE(applicable(Representation::ReflectionCopy, type_of<std::string>(), false));
  EXPECT_FALSE(applicable(Representation::ReflectionCopy, type_of<Opaque>(), false));
}

TEST_F(RepresentationFixture, CloneNeedsGeneratedClone) {
  EXPECT_TRUE(applicable(Representation::CloneCopy, type_of<Polygon>(), false));
  EXPECT_FALSE(applicable(Representation::CloneCopy, type_of<NoClone>(), false));
  EXPECT_FALSE(applicable(Representation::CloneCopy, type_of<std::string>(), false));
  // Arrays clone via the vector copy constructor.
  EXPECT_TRUE(applicable(Representation::CloneCopy,
                         type_of<std::vector<std::string>>(), false));
}

TEST_F(RepresentationFixture, ReferenceNeedsImmutabilityOrDeclaration) {
  EXPECT_TRUE(applicable(Representation::Reference, type_of<std::string>(), false));
  EXPECT_TRUE(applicable(Representation::Reference, type_of<Token>(), false));
  EXPECT_FALSE(applicable(Representation::Reference, type_of<Polygon>(), false));
  // The administrator's read-only declaration unlocks it (§4.2.4).
  EXPECT_TRUE(applicable(Representation::Reference, type_of<Polygon>(), true));
  EXPECT_TRUE(applicable(Representation::Reference,
                         type_of<std::vector<std::uint8_t>>(), true));
}

// --- §6 auto-selection ----------------------------------------------------------

TEST_F(RepresentationFixture, AutoSelectFollowsSection6Order) {
  // a) immutable -> reference
  EXPECT_EQ(auto_select(type_of<std::string>(), false), Representation::Reference);
  EXPECT_EQ(auto_select(type_of<Token>(), false), Representation::Reference);
  // b) bean/array -> reflection
  EXPECT_EQ(auto_select(type_of<Polygon>(), false), Representation::ReflectionCopy);
  EXPECT_EQ(auto_select(type_of<std::vector<std::uint8_t>>(), false),
            Representation::ReflectionCopy);
  // c) serializable (but not bean/array): Opaque is neither -> d
  // d) fallback -> compact SAX events (the legacy string-soup form stays
  //    selectable explicitly, but auto never picks it any more)
  EXPECT_EQ(auto_select(type_of<Opaque>(), false),
            Representation::SaxEventsCompact);
}

TEST_F(RepresentationFixture, AutoSelectSerializableNonBean) {
  // A non-bean but serializable struct hits rule (c).  Build one on the fly.
  struct SealedRecord {
    std::string data;
  };
  static const reflect::TypeInfo& t =
      reflect::StructBuilder<SealedRecord>("test.SealedRecord")
          .field("data", &SealedRecord::data)
          .not_bean()
          .serializable()
          .register_type();
  EXPECT_EQ(auto_select(t, false), Representation::Serialized);
}

TEST_F(RepresentationFixture, ReadOnlyDeclarationShortCircuits) {
  EXPECT_EQ(auto_select(type_of<Polygon>(), true), Representation::Reference);
}

TEST_F(RepresentationFixture, PreferCloneUpgradesBeanRule) {
  EXPECT_EQ(auto_select(type_of<Polygon>(), false, true), Representation::CloneCopy);
  // Without a clone, prefer_clone falls through to reflection.
  EXPECT_EQ(auto_select(type_of<NoClone>(), false, true),
            Representation::ReflectionCopy);
}

TEST_F(RepresentationFixture, AutoSelectionForGoogleTypes) {
  using services::google::GoogleSearchResult;
  // The paper's own summary: String -> reference, byte[]/beans -> reflection.
  EXPECT_EQ(auto_select(type_of<std::string>(), false), Representation::Reference);
  EXPECT_EQ(auto_select(type_of<std::vector<std::uint8_t>>(), false),
            Representation::ReflectionCopy);
  EXPECT_EQ(auto_select(type_of<GoogleSearchResult>(), false),
            Representation::ReflectionCopy);
}

TEST_F(RepresentationFixture, AutoIsAlwaysApplicable) {
  EXPECT_TRUE(applicable(Representation::Auto, type_of<Opaque>(), false));
}

TEST(RepresentationNamesTest, FromNameRoundTripsEveryValue) {
  // Every enum value (the 7 concrete representations AND Auto) must
  // round-trip through its display name — the adaptive policy keys its
  // models off names parsed back from cost-profile rows.
  for (std::size_t i = 0; i <= kConcreteRepresentationCount; ++i) {
    const Representation r = static_cast<Representation>(i);
    const std::optional<Representation> parsed =
        representation_from_name(representation_name(r));
    ASSERT_TRUE(parsed.has_value()) << representation_name(r);
    EXPECT_EQ(*parsed, r) << representation_name(r);
  }
  EXPECT_FALSE(representation_from_name("").has_value());
  EXPECT_FALSE(representation_from_name("XML").has_value());
  EXPECT_FALSE(representation_from_name("xml message").has_value());
  EXPECT_FALSE(representation_from_name("Pass by reference ").has_value());
}

TEST_F(RepresentationFixture, ApplicableRepresentationsMatchesMatrix) {
  using services::google::GoogleSearchResult;
  // Mutable bean: everything except Reference (and never Auto).
  const std::vector<Representation> bean =
      applicable_representations(type_of<GoogleSearchResult>(), false);
  EXPECT_EQ(bean.size(), kConcreteRepresentationCount - 1);
  for (Representation r : bean) {
    EXPECT_NE(r, Representation::Reference);
    EXPECT_NE(r, Representation::Auto);
    EXPECT_TRUE(applicable(r, type_of<GoogleSearchResult>(), false));
  }
  // The read-only declaration unlocks Reference: all 7 concrete forms.
  EXPECT_EQ(
      applicable_representations(type_of<GoogleSearchResult>(), true).size(),
      kConcreteRepresentationCount);
  // Opaque (no serialization, no reflection, no clone, mutable): only the
  // three universal XML/SAX forms remain.
  const std::vector<Representation> opaque =
      applicable_representations(type_of<Opaque>(), false);
  EXPECT_EQ(opaque, (std::vector<Representation>{
                        Representation::XmlMessage, Representation::SaxEvents,
                        Representation::SaxEventsCompact}));
}

TEST(RepresentationNamesTest, AllNamed) {
  EXPECT_EQ(representation_name(Representation::XmlMessage), "XML message");
  EXPECT_EQ(representation_name(Representation::SaxEvents), "SAX events sequence");
  EXPECT_EQ(representation_name(Representation::SaxEventsCompact),
            "SAX events compact");
  EXPECT_EQ(representation_name(Representation::Serialized), "Java serialization");
  EXPECT_EQ(representation_name(Representation::ReflectionCopy), "Copy by reflection");
  EXPECT_EQ(representation_name(Representation::CloneCopy), "Copy by clone");
  EXPECT_EQ(representation_name(Representation::Reference), "Pass by reference");
  EXPECT_EQ(key_method_name(KeyMethod::ToString), "toString method");
}

}  // namespace
}  // namespace wsc::cache
