// Deterministic CLOCK (second-chance) eviction semantics, single shard.
//
// These tests replace the old exact-LRU-order assertions: CLOCK does not
// promise a total recency order, it promises (a) a hit buys exactly one
// reprieve from the sweeping hand, (b) the hand clears marks as it
// passes, and (c) expired entries are reclaimed as expirations before any
// live entry is evicted at that slot.  With a single shard and a scripted
// hit sequence the hand's path — and therefore the victim — is exact.
#include <gtest/gtest.h>

#include "core/response_cache.hpp"
#include "reflect/object.hpp"

namespace wsc::cache {
namespace {

using reflect::Object;
using std::chrono::milliseconds;
using std::chrono::minutes;

class IdValue final : public CachedValue {
 public:
  explicit IdValue(int id) : id_(id) {}
  reflect::Object retrieve() const override {
    return Object::make(std::int32_t{id_});
  }
  Representation representation() const override {
    return Representation::Reference;
  }
  std::size_t memory_size() const override { return 32; }

 private:
  std::int32_t id_;
};

CacheKey key(const std::string& s) { return CacheKey(s); }

std::shared_ptr<const CachedValue> value(int id) {
  return std::make_shared<IdValue>(id);
}

ResponseCache::Config one_shard(std::size_t max_entries) {
  return ResponseCache::Config{.max_entries = max_entries, .shards = 1};
}

bool present(ResponseCache& cache, const std::string& k) {
  // lookup_allow_stale: side-effect-free presence probe (no mark, no
  // hit/miss accounting), so the probe cannot perturb the clock state.
  return cache.lookup_allow_stale(key(k)).value != nullptr;
}

TEST(ClockEvictionTest, UnmarkedEntriesEvictInInsertionOrder) {
  ResponseCache cache(one_shard(3));
  cache.store(key("a"), value(1), minutes(1));
  cache.store(key("b"), value(2), minutes(1));
  cache.store(key("c"), value(3), minutes(1));
  // No hits anywhere: pure FIFO — the hand starts at 'a'.
  cache.store(key("d"), value(4), minutes(1));
  EXPECT_FALSE(present(cache, "a"));
  EXPECT_TRUE(present(cache, "b"));
  cache.store(key("e"), value(5), minutes(1));
  EXPECT_FALSE(present(cache, "b"));
  StatsSnapshot s = cache.stats();
  EXPECT_EQ(s.evictions, 2u);
  EXPECT_EQ(s.second_chances, 0u);
}

TEST(ClockEvictionTest, HitBuysExactlyOneSecondChance) {
  ResponseCache cache(one_shard(3));
  cache.store(key("a"), value(1), minutes(1));
  cache.store(key("b"), value(2), minutes(1));
  cache.store(key("c"), value(3), minutes(1));
  cache.lookup(key("a"));  // mark a
  // Sweep 1: a is marked -> spared (mark cleared, hand moves on), b is
  // the first unmarked entry after it -> evicted.
  cache.store(key("d"), value(4), minutes(1));
  EXPECT_TRUE(present(cache, "a"));
  EXPECT_FALSE(present(cache, "b"));
  // The hand now rests past a; never re-hit, a survives only until the
  // hand revolves back: the next victims are c, then d, then a itself.
  cache.store(key("e"), value(5), minutes(1));
  EXPECT_FALSE(present(cache, "c"));
  EXPECT_TRUE(present(cache, "a"));
  cache.store(key("f"), value(6), minutes(1));
  EXPECT_FALSE(present(cache, "d"));
  EXPECT_TRUE(present(cache, "a"));
  cache.store(key("g"), value(7), minutes(1));
  EXPECT_FALSE(present(cache, "a"));  // mark consumed in sweep 1: a pays
  StatsSnapshot s = cache.stats();
  EXPECT_EQ(s.evictions, 4u);        // b, c, d, a
  EXPECT_EQ(s.second_chances, 1u);   // a was spared exactly once
}

TEST(ClockEvictionTest, AllMarkedMeansNewcomerLosesFirstRound) {
  // When every resident entry is hot, the hand strips all marks and comes
  // back around to the unmarked newcomer — CLOCK's implicit admission
  // control.  The marks are gone afterwards, so the NEXT insertion evicts
  // the oldest resident.
  ResponseCache cache(one_shard(3));
  cache.store(key("a"), value(1), minutes(1));
  cache.store(key("b"), value(2), minutes(1));
  cache.store(key("c"), value(3), minutes(1));
  cache.lookup(key("a"));
  cache.lookup(key("b"));
  cache.lookup(key("c"));
  cache.store(key("d"), value(4), minutes(1));
  EXPECT_TRUE(present(cache, "a"));
  EXPECT_TRUE(present(cache, "b"));
  EXPECT_TRUE(present(cache, "c"));
  EXPECT_FALSE(present(cache, "d"));
  EXPECT_EQ(cache.stats().second_chances, 3u);
  cache.store(key("e"), value(5), minutes(1));
  EXPECT_FALSE(present(cache, "a"));  // marks consumed: a pays next
  EXPECT_TRUE(present(cache, "e"));
}

TEST(ClockEvictionTest, ReplaceCountsAsUse) {
  ResponseCache cache(one_shard(3));
  cache.store(key("a"), value(1), minutes(1));
  cache.store(key("b"), value(2), minutes(1));
  cache.store(key("c"), value(3), minutes(1));
  cache.store(key("a"), value(10), minutes(1));  // replace marks a
  cache.store(key("d"), value(4), minutes(1));
  EXPECT_TRUE(present(cache, "a"));
  EXPECT_FALSE(present(cache, "b"));
  EXPECT_EQ(cache.lookup(key("a"))->retrieve().as<std::int32_t>(), 10);
}

TEST(ClockEvictionTest, ExpiredEntriesReclaimedAsExpirationsNotEvictions) {
  util::ManualClock clock;
  ResponseCache cache(one_shard(3), clock);
  cache.store(key("a"), value(1), milliseconds(10));
  cache.store(key("b"), value(2), minutes(1));
  cache.store(key("c"), value(3), minutes(1));
  cache.lookup(key("b"));  // mark b: without the dead 'a' b would be spared
  clock.advance(milliseconds(20));  // a is now dead in place
  cache.store(key("d"), value(4), minutes(1));
  // The hand found 'a' expired and reclaimed it — no live entry paid.
  EXPECT_TRUE(present(cache, "b"));
  EXPECT_TRUE(present(cache, "c"));
  EXPECT_TRUE(present(cache, "d"));
  StatsSnapshot s = cache.stats();
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.expirations, 1u);
  EXPECT_EQ(s.entries, 3u);
}

TEST(ClockEvictionTest, RefreshMarksEntryForTheSweep) {
  util::ManualClock clock;
  ResponseCache cache(one_shard(3), clock);
  cache.store(key("a"), value(1), minutes(1));
  cache.store(key("b"), value(2), minutes(1));
  cache.store(key("c"), value(3), minutes(1));
  EXPECT_TRUE(cache.refresh(key("a"), minutes(2)));  // 304 renewal marks a
  cache.store(key("d"), value(4), minutes(1));
  EXPECT_TRUE(present(cache, "a"));
  EXPECT_FALSE(present(cache, "b"));
}

TEST(ClockEvictionTest, SweepStatisticsAccumulate) {
  ResponseCache cache(one_shard(2));
  cache.store(key("a"), value(1), minutes(1));
  cache.store(key("b"), value(2), minutes(1));
  for (int i = 0; i < 8; ++i)
    cache.store(key("k" + std::to_string(i)), value(i), minutes(1));
  StatsSnapshot s = cache.stats();
  EXPECT_EQ(s.evictions, 8u);
  EXPECT_GE(s.clock_sweeps, s.evictions);
  EXPECT_EQ(s.entries, 2u);
}

}  // namespace
}  // namespace wsc::cache
