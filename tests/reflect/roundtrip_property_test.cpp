// Property-based sweeps: for randomly generated object trees, the
// representation-changing operations must preserve structural equality and
// produce storage-independent results.
#include <gtest/gtest.h>

#include "reflect/algorithms.hpp"
#include "reflect/serialize.hpp"
#include "tests/reflect/test_types.hpp"
#include "util/random.hpp"

namespace wsc::reflect {
namespace {

using testing::ensure_test_types;
using testing::Point;
using testing::Polygon;

Polygon random_polygon(util::Rng& rng) {
  Polygon p;
  p.name = rng.next_word(0 + 1, 20);
  p.weight = rng.next_double() * 100 - 50;
  p.closed = rng.next_bool();
  std::size_t npoints = rng.next_below(12);
  for (std::size_t i = 0; i < npoints; ++i) {
    Point pt;
    pt.x = static_cast<std::int32_t>(rng.next_range(-1'000'000, 1'000'000));
    pt.y = static_cast<std::int32_t>(rng.next_range(INT32_MIN, INT32_MAX));
    pt.label = rng.next_bool(0.2) ? "" : rng.next_sentence(1 + rng.next_below(4));
    p.points.push_back(std::move(pt));
  }
  std::size_t ntags = rng.next_below(5);
  for (std::size_t i = 0; i < ntags; ++i) p.tags.push_back(rng.next_word(1, 30));
  return p;
}

class RoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override { ensure_test_types(); }
};

TEST_P(RoundTripProperty, SerializeDeserializePreservesEquality) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 20; ++i) {
    Object o = Object::make(random_polygon(rng));
    Object back = deserialize(serialize(o));
    EXPECT_TRUE(deep_equals(o, back));
  }
}

TEST_P(RoundTripProperty, DeepCopyEqualAndIndependent) {
  util::Rng rng(GetParam() ^ 0xD5);
  for (int i = 0; i < 20; ++i) {
    Object o = Object::make(random_polygon(rng));
    Object copy = deep_copy(o);
    ASSERT_TRUE(deep_equals(o, copy));
    // Mutate every mutable region of the copy; the original must not move.
    Polygon snapshot = o.as<Polygon>();
    Polygon& c = copy.as<Polygon>();
    c.name += "!";
    c.weight += 1;
    for (auto& pt : c.points) pt.x ^= 1;
    c.tags.emplace_back("extra");
    EXPECT_TRUE(deep_equals(o, Object::make(snapshot)));
  }
}

TEST_P(RoundTripProperty, CloneMatchesDeepCopy) {
  util::Rng rng(GetParam() ^ 0xC10);
  for (int i = 0; i < 20; ++i) {
    Object o = Object::make(random_polygon(rng));
    EXPECT_TRUE(deep_equals(clone(o), deep_copy(o)));
  }
}

TEST_P(RoundTripProperty, ToStringIsAFunctionOfValue) {
  util::Rng rng(GetParam() ^ 0x70);
  for (int i = 0; i < 20; ++i) {
    Polygon p = random_polygon(rng);
    Object a = Object::make(p);
    Object b = Object::make(p);
    EXPECT_EQ(to_string(a), to_string(b));
    // And distinguishes different values (with overwhelming probability).
    Polygon q = p;
    q.weight += 1.0;
    EXPECT_NE(to_string(Object::make(q)), to_string(a));
  }
}

TEST_P(RoundTripProperty, SerializationIsCanonical) {
  util::Rng rng(GetParam() ^ 0x5E);
  for (int i = 0; i < 20; ++i) {
    Polygon p = random_polygon(rng);
    EXPECT_EQ(serialize(Object::make(p)), serialize(Object::make(p)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace wsc::reflect
