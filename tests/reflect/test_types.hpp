// Shared registered types for reflect/soap/core tests.  Registration is
// process-global, so every test TU funnels through these ensure-functions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "reflect/builder.hpp"

namespace wsc::reflect::testing {

/// Fully-featured bean: serializable + cloneable + reflectable.
struct Point {
  std::int32_t x = 0;
  std::int32_t y = 0;
  std::string label;

  bool operator==(const Point&) const = default;
};

/// Nested bean with arrays, for deep-copy / roundtrip coverage.
struct Polygon {
  std::string name;
  std::vector<Point> points;
  std::vector<std::string> tags;
  double weight = 0.0;
  bool closed = false;

  bool operator==(const Polygon&) const = default;
};

/// Serializable + bean but NOT cloneable (clone must fail).
struct NoClone {
  std::string payload;

  bool operator==(const NoClone&) const = default;
};

/// Bean + cloneable but NOT serializable (binary serialization must fail).
struct NoSerialize {
  std::int64_t ticket = 0;

  bool operator==(const NoSerialize&) const = default;
};

/// Application-specific opaque type: no bean accessors, no clone, not
/// serializable, no custom toString — only XML/SAX representations apply.
struct Opaque {
  std::string secret;

  bool operator==(const Opaque&) const = default;
};

/// Struct declared serializable whose FIELD type is not — deep
/// serializability must detect this (the Java runtime-exception case).
struct Wrapper {
  NoSerialize inner;
  std::string note;

  bool operator==(const Wrapper&) const = default;
};

/// Immutable value type: pass-by-reference eligible.
struct Token {
  std::string value;

  bool operator==(const Token&) const = default;
};

inline void ensure_test_types() {
  static const bool done = [] {
    StructBuilder<Point>("test.Point")
        .field("x", &Point::x)
        .field("y", &Point::y)
        .field("label", &Point::label)
        .serializable()
        .cloneable()
        .register_type();
    StructBuilder<Polygon>("test.Polygon")
        .field("name", &Polygon::name)
        .field("points", &Polygon::points)
        .field("tags", &Polygon::tags)
        .field("weight", &Polygon::weight)
        .field("closed", &Polygon::closed)
        .serializable()
        .cloneable()
        .register_type();
    StructBuilder<NoClone>("test.NoClone")
        .field("payload", &NoClone::payload)
        .serializable()
        .register_type();
    StructBuilder<NoSerialize>("test.NoSerialize")
        .field("ticket", &NoSerialize::ticket)
        .cloneable()
        .register_type();
    StructBuilder<Opaque>("test.Opaque").not_bean().register_type();
    StructBuilder<Wrapper>("test.Wrapper")
        .field("inner", &Wrapper::inner)
        .field("note", &Wrapper::note)
        .serializable()
        .register_type();
    StructBuilder<Token>("test.Token")
        .field("value", &Token::value)
        .serializable()
        .immutable()
        .to_string([](const Token& t) { return "Token(" + t.value + ")"; })
        .register_type();
    return true;
  }();
  (void)done;
}

inline Polygon sample_polygon() {
  Polygon p;
  p.name = "triangle";
  p.points = {{0, 0, "origin"}, {10, 0, "east"}, {0, 10, "north"}};
  p.tags = {"convex", "small"};
  p.weight = 2.5;
  p.closed = true;
  return p;
}

}  // namespace wsc::reflect::testing
