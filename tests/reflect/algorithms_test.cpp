#include "reflect/algorithms.hpp"

#include <gtest/gtest.h>

#include "tests/reflect/test_types.hpp"
#include "util/error.hpp"

namespace wsc::reflect {
namespace {

using testing::ensure_test_types;
using testing::NoClone;
using testing::Opaque;
using testing::Point;
using testing::Polygon;
using testing::sample_polygon;
using testing::Token;

struct AlgorithmsFixture : ::testing::Test {
  void SetUp() override { ensure_test_types(); }
};

// --- deep_copy ("copy by reflection") ----------------------------------------

TEST_F(AlgorithmsFixture, DeepCopyProducesEqualIndependentObject) {
  Object original = Object::make(sample_polygon());
  Object copy = deep_copy(original);
  EXPECT_TRUE(deep_equals(original, copy));
  EXPECT_NE(original.data(), copy.data());

  // §3.1: mutating the copy must not touch the original.
  copy.as<Polygon>().points[0].label = "MUTATED";
  copy.as<Polygon>().tags.push_back("new");
  EXPECT_EQ(original.as<Polygon>().points[0].label, "origin");
  EXPECT_EQ(original.as<Polygon>().tags.size(), 2u);
}

TEST_F(AlgorithmsFixture, DeepCopyOfPrimitive) {
  Object s = Object::make(std::string("hello"));
  Object copy = deep_copy(s);
  EXPECT_EQ(copy.as<std::string>(), "hello");
  EXPECT_NE(s.data(), copy.data());
}

TEST_F(AlgorithmsFixture, DeepCopyOfBytes) {
  Object b = Object::make(std::vector<std::uint8_t>{1, 2, 3});
  Object copy = deep_copy(b);
  copy.as<std::vector<std::uint8_t>>()[0] = 99;
  EXPECT_EQ(b.as<std::vector<std::uint8_t>>()[0], 1);
}

TEST_F(AlgorithmsFixture, DeepCopyOfArrayOfStructs) {
  std::vector<Point> v{{1, 2, "a"}, {3, 4, "b"}};
  Object arr = Object::make(v);
  Object copy = deep_copy(arr);
  copy.as<std::vector<Point>>()[1].label = "changed";
  EXPECT_EQ(arr.as<std::vector<Point>>()[1].label, "b");
}

TEST_F(AlgorithmsFixture, DeepCopyRejectsNonBean) {
  Object o = Object::make(Opaque{"s3cret"});
  EXPECT_THROW(deep_copy(o), SerializationError);
}

TEST_F(AlgorithmsFixture, DeepCopyOfNullIsNull) {
  EXPECT_TRUE(deep_copy(Object{}).is_null());
}

TEST_F(AlgorithmsFixture, SupportsReflectionCopyRules) {
  EXPECT_TRUE(supports_reflection_copy(type_of<Polygon>()));          // bean
  EXPECT_TRUE(supports_reflection_copy(type_of<std::vector<Point>>()));  // array
  EXPECT_TRUE(supports_reflection_copy(type_of<std::vector<std::uint8_t>>()));  // byte[]
  EXPECT_FALSE(supports_reflection_copy(type_of<std::string>()));     // Table 7: n/a
  EXPECT_FALSE(supports_reflection_copy(type_of<Opaque>()));
}

// --- clone ("copy by clone") --------------------------------------------------

TEST_F(AlgorithmsFixture, CloneProducesEqualIndependentObject) {
  Object original = Object::make(sample_polygon());
  Object cloned = clone(original);
  EXPECT_TRUE(deep_equals(original, cloned));
  cloned.as<Polygon>().name = "changed";
  EXPECT_EQ(original.as<Polygon>().name, "triangle");
}

TEST_F(AlgorithmsFixture, CloneRequiresCloneableTrait) {
  Object o = Object::make(NoClone{"data"});
  EXPECT_THROW(clone(o), SerializationError);
  EXPECT_THROW(clone(Object::make(std::string("s"))), SerializationError);
}

TEST_F(AlgorithmsFixture, CloneOfArray) {
  Object arr = Object::make(std::vector<Point>{{1, 1, "p"}});
  Object cloned = clone(arr);  // arrays are always cloneable
  cloned.as<std::vector<Point>>()[0].x = 9;
  EXPECT_EQ(arr.as<std::vector<Point>>()[0].x, 1);
}

// --- deep_equals ---------------------------------------------------------------

TEST_F(AlgorithmsFixture, DeepEqualsComparesStructurally) {
  Object a = Object::make(sample_polygon());
  Object b = Object::make(sample_polygon());
  EXPECT_TRUE(deep_equals(a, b));
  b.as<Polygon>().points[2].y = 11;
  EXPECT_FALSE(deep_equals(a, b));
}

TEST_F(AlgorithmsFixture, DeepEqualsNullHandling) {
  EXPECT_TRUE(deep_equals(Object{}, Object{}));
  EXPECT_FALSE(deep_equals(Object{}, Object::make(1)));
}

TEST_F(AlgorithmsFixture, DeepEqualsDifferentTypesNotEqual) {
  EXPECT_FALSE(deep_equals(Object::make(std::string("1")),
                           Object::make(std::int32_t{1})));
}

TEST_F(AlgorithmsFixture, DeepEqualsArrayLengthMismatch) {
  Object a = Object::make(std::vector<std::string>{"x"});
  Object b = Object::make(std::vector<std::string>{"x", "y"});
  EXPECT_FALSE(deep_equals(a, b));
}

// --- to_string (cache keys) ----------------------------------------------------

TEST_F(AlgorithmsFixture, PrimitivesToString) {
  EXPECT_EQ(to_string(Object::make(true)), "true");
  EXPECT_EQ(to_string(Object::make(std::int32_t{-5})), "-5");
  EXPECT_EQ(to_string(Object::make(std::int64_t{1} << 40)), "1099511627776");
  EXPECT_EQ(to_string(Object::make(2.5)), "2.5");
  EXPECT_EQ(to_string(Object::make(std::string("raw"))), "raw");
  EXPECT_EQ(to_string(Object{}), "null");
}

TEST_F(AlgorithmsFixture, BeanToStringIsReflective) {
  std::string s = to_string(Object::make(Point{1, 2, "p"}));
  EXPECT_EQ(s, "test.Point{x=1,y=2,label=p}");
}

TEST_F(AlgorithmsFixture, ArrayToString) {
  EXPECT_EQ(to_string(Object::make(std::vector<std::string>{"a", "b"})),
            "[a,b]");
}

TEST_F(AlgorithmsFixture, CustomToStringWins) {
  EXPECT_EQ(to_string(Object::make(Token{"t1"})), "Token(t1)");
}

TEST_F(AlgorithmsFixture, BytesHaveNoUsableToString) {
  // Java byte[].toString() is address-based: unusable for keys.
  EXPECT_THROW(to_string(Object::make(std::vector<std::uint8_t>{1})),
               SerializationError);
}

TEST_F(AlgorithmsFixture, NonBeanWithoutToStringThrows) {
  EXPECT_THROW(to_string(Object::make(Opaque{"x"})), SerializationError);
}

TEST_F(AlgorithmsFixture, EqualObjectsSameToString) {
  Object a = Object::make(sample_polygon());
  Object b = Object::make(sample_polygon());
  EXPECT_EQ(to_string(a), to_string(b));
}

// --- memory_size ---------------------------------------------------------------

TEST_F(AlgorithmsFixture, MemorySizeIncludesOwnedHeap) {
  Object small = Object::make(std::string("ab"));
  Object large = Object::make(std::string(10'000, 'x'));
  EXPECT_GT(memory_size(large), memory_size(small) + 9'000);
}

TEST_F(AlgorithmsFixture, MemorySizeOfStructAtLeastShallow) {
  Object p = Object::make(sample_polygon());
  EXPECT_GE(memory_size(p), sizeof(Polygon));
}

TEST_F(AlgorithmsFixture, MemorySizeGrowsWithArrayElements) {
  std::vector<Point> few(2), many(200);
  EXPECT_GT(memory_size(Object::make(many)), memory_size(Object::make(few)));
}

TEST_F(AlgorithmsFixture, NullMemorySizeIsZero) {
  EXPECT_EQ(memory_size(Object{}), 0u);
}

// --- Object handle -------------------------------------------------------------

TEST_F(AlgorithmsFixture, ObjectTypedAccessChecked) {
  Object p = Object::make(Point{1, 2, "x"});
  EXPECT_EQ(p.as<Point>().x, 1);
  EXPECT_THROW(p.as<Polygon>(), ReflectionError);
  EXPECT_THROW(Object{}.as<Point>(), ReflectionError);
}

TEST_F(AlgorithmsFixture, ObjectCopiesShareStorage) {
  Object a = Object::make(Point{1, 2, "x"});
  Object b = a;  // shallow handle copy: shares storage (the §3.1 hazard)
  b.as<Point>().x = 42;
  EXPECT_EQ(a.as<Point>().x, 42);
  EXPECT_EQ(a.use_count(), 2);
}

TEST_F(AlgorithmsFixture, ObjectNullChecks) {
  Object null;
  EXPECT_TRUE(null.is_null());
  EXPECT_FALSE(static_cast<bool>(null));
  EXPECT_THROW(null.type(), ReflectionError);
}

TEST_F(AlgorithmsFixture, ObjectRejectsInconsistentConstruction) {
  EXPECT_THROW(Object(nullptr, &type_of<std::string>()), ReflectionError);
  EXPECT_THROW(Object(std::make_shared<int>(1), nullptr), ReflectionError);
}

}  // namespace
}  // namespace wsc::reflect
