#include "reflect/registry.hpp"

#include <gtest/gtest.h>

#include "reflect/builder.hpp"
#include "tests/reflect/test_types.hpp"

namespace wsc::reflect {
namespace {

using testing::ensure_test_types;
using testing::Point;
using testing::Polygon;

struct RegistryFixture : ::testing::Test {
  void SetUp() override { ensure_test_types(); }
};

TEST_F(RegistryFixture, BuiltinsHaveExpectedKindsAndTraits) {
  EXPECT_EQ(type_of<bool>().kind, Kind::Bool);
  EXPECT_EQ(type_of<std::int32_t>().kind, Kind::Int32);
  EXPECT_EQ(type_of<std::int64_t>().kind, Kind::Int64);
  EXPECT_EQ(type_of<double>().kind, Kind::Double);
  EXPECT_EQ(type_of<std::string>().kind, Kind::String);
  EXPECT_EQ(type_of<std::vector<std::uint8_t>>().kind, Kind::Bytes);

  EXPECT_TRUE(type_of<std::string>().traits.immutable);
  EXPECT_FALSE(type_of<std::vector<std::uint8_t>>().traits.immutable);
  EXPECT_TRUE(type_of<std::int32_t>().traits.serializable);
  EXPECT_FALSE(type_of<std::string>().traits.cloneable);
}

TEST_F(RegistryFixture, BuiltinNamesMatchXsdVocabulary) {
  EXPECT_EQ(type_of<bool>().name, "boolean");
  EXPECT_EQ(type_of<std::int32_t>().name, "int");
  EXPECT_EQ(type_of<std::string>().name, "string");
  EXPECT_EQ(type_of<std::vector<std::uint8_t>>().name, "base64Binary");
}

TEST_F(RegistryFixture, TypeOfIsStablePerType) {
  EXPECT_EQ(&type_of<Point>(), &type_of<Point>());
  EXPECT_EQ(&type_of<std::string>(), &type_of<std::string>());
}

TEST_F(RegistryFixture, RegisteredStructDescribesFields) {
  const TypeInfo& t = type_of<Point>();
  EXPECT_EQ(t.kind, Kind::Struct);
  ASSERT_EQ(t.fields.size(), 3u);
  EXPECT_EQ(t.fields[0].name, "x");
  EXPECT_EQ(t.fields[2].type, &type_of<std::string>());
  EXPECT_NE(t.field("label"), nullptr);
  EXPECT_EQ(t.field("nope"), nullptr);
}

TEST_F(RegistryFixture, FieldAccessorsResolveAddresses) {
  Point p{3, 4, "hi"};
  const TypeInfo& t = type_of<Point>();
  EXPECT_EQ(*static_cast<std::int32_t*>(t.field("x")->ptr(&p)), 3);
  EXPECT_EQ(*static_cast<const std::string*>(t.field("label")->cptr(&p)), "hi");
  *static_cast<std::int32_t*>(t.field("y")->ptr(&p)) = 99;
  EXPECT_EQ(p.y, 99);
}

TEST_F(RegistryFixture, ArrayTypesCreatedOnDemand) {
  const TypeInfo& arr = type_of<std::vector<Point>>();
  EXPECT_EQ(arr.kind, Kind::Array);
  EXPECT_EQ(arr.element, &type_of<Point>());
  EXPECT_EQ(arr.name, "ArrayOftest.Point");
  // Registered in the global registry too.
  EXPECT_EQ(TypeRegistry::instance().find("ArrayOftest.Point"), &arr);
}

TEST_F(RegistryFixture, ArrayOpsWork) {
  const TypeInfo& arr = type_of<std::vector<std::string>>();
  std::vector<std::string> v{"a", "b"};
  EXPECT_EQ(arr.array_size(&v), 2u);
  arr.array_resize(&v, 3);
  EXPECT_EQ(v.size(), 3u);
  *static_cast<std::string*>(arr.array_at(&v, 2)) = "c";
  EXPECT_EQ(v[2], "c");
}

TEST_F(RegistryFixture, NestedArrayTypes) {
  const TypeInfo& arr2 = type_of<std::vector<std::vector<std::string>>>();
  EXPECT_EQ(arr2.kind, Kind::Array);
  EXPECT_EQ(arr2.element->kind, Kind::Array);
  EXPECT_EQ(arr2.element->element, &type_of<std::string>());
}

TEST_F(RegistryFixture, LookupByName) {
  EXPECT_EQ(&TypeRegistry::instance().get("test.Point"), &type_of<Point>());
  EXPECT_EQ(TypeRegistry::instance().find("does.not.Exist"), nullptr);
  EXPECT_THROW(TypeRegistry::instance().get("does.not.Exist"), ReflectionError);
}

TEST_F(RegistryFixture, DuplicateRegistrationThrows) {
  EXPECT_THROW(
      StructBuilder<Point>("test.Point").field("x", &Point::x).register_type(),
      ReflectionError);
}

TEST_F(RegistryFixture, UnregisteredTypeThrows) {
  struct NeverRegistered {};
  EXPECT_THROW(type_of<NeverRegistered>(), ReflectionError);
}

TEST_F(RegistryFixture, TraitsReflectBuilderCalls) {
  ensure_test_types();
  EXPECT_TRUE(type_of<Point>().traits.serializable);
  EXPECT_TRUE(type_of<Point>().traits.cloneable);
  EXPECT_TRUE(type_of<Point>().traits.bean);
  EXPECT_FALSE(type_of<testing::NoClone>().traits.cloneable);
  EXPECT_FALSE(type_of<testing::NoSerialize>().traits.serializable);
  EXPECT_FALSE(type_of<testing::Opaque>().traits.bean);
  EXPECT_TRUE(type_of<testing::Token>().traits.immutable);
}

TEST_F(RegistryFixture, DeepSerializabilityDetectsBadField) {
  EXPECT_TRUE(type_of<Polygon>().is_deeply_serializable());
  // Wrapper is declared serializable but embeds NoSerialize.
  EXPECT_TRUE(type_of<testing::Wrapper>().traits.serializable);
  EXPECT_FALSE(type_of<testing::Wrapper>().is_deeply_serializable());
}

TEST_F(RegistryFixture, ReflectabilityRules) {
  EXPECT_TRUE(type_of<Polygon>().is_reflectable());
  EXPECT_FALSE(type_of<testing::Opaque>().is_reflectable());
  EXPECT_TRUE(type_of<std::string>().is_reflectable());  // leaf
}

TEST_F(RegistryFixture, TypeNamesListsRegistrations) {
  auto names = TypeRegistry::instance().type_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "test.Point"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "string"), names.end());
}

TEST(KindNameTest, AllKindsNamed) {
  EXPECT_STREQ(kind_name(Kind::Bool), "bool");
  EXPECT_STREQ(kind_name(Kind::Struct), "struct");
  EXPECT_STREQ(kind_name(Kind::Array), "array");
  EXPECT_STREQ(kind_name(Kind::Bytes), "bytes");
}

}  // namespace
}  // namespace wsc::reflect
