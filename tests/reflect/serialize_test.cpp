#include "reflect/serialize.hpp"

#include <gtest/gtest.h>

#include "reflect/algorithms.hpp"
#include "tests/reflect/test_types.hpp"
#include "util/byte_buffer.hpp"
#include "util/error.hpp"

namespace wsc::reflect {
namespace {

using testing::ensure_test_types;
using testing::NoSerialize;
using testing::Point;
using testing::Polygon;
using testing::sample_polygon;
using testing::Wrapper;

struct SerializeFixture : ::testing::Test {
  void SetUp() override { ensure_test_types(); }
};

TEST_F(SerializeFixture, PrimitiveRoundTrips) {
  for (const Object& o :
       {Object::make(std::string("hello")), Object::make(std::int32_t{-7}),
        Object::make(std::int64_t{1} << 50), Object::make(3.75),
        Object::make(true), Object::make(std::vector<std::uint8_t>{9, 8, 7})}) {
    Object back = deserialize(serialize(o));
    EXPECT_TRUE(deep_equals(o, back)) << o.type().name;
    EXPECT_NE(o.data(), back.data());  // fresh object = deep-copy semantics
  }
}

TEST_F(SerializeFixture, StructRoundTrips) {
  Object o = Object::make(sample_polygon());
  Object back = deserialize(serialize(o));
  EXPECT_TRUE(deep_equals(o, back));
  // Isolation: the reconstructed object is independent.
  back.as<Polygon>().points[0].x = 777;
  EXPECT_EQ(o.as<Polygon>().points[0].x, 0);
}

TEST_F(SerializeFixture, ArrayRoundTrips) {
  Object o = Object::make(std::vector<Point>{{1, 2, "a"}, {3, 4, "b"}});
  EXPECT_TRUE(deep_equals(o, deserialize(serialize(o))));
}

TEST_F(SerializeFixture, EmptyContainersRoundTrip) {
  EXPECT_TRUE(deep_equals(Object::make(std::vector<Point>{}),
                          deserialize(serialize(Object::make(std::vector<Point>{})))));
  EXPECT_TRUE(deep_equals(Object::make(std::string("")),
                          deserialize(serialize(Object::make(std::string(""))))));
}

TEST_F(SerializeFixture, NullRoundTrips) {
  std::vector<std::uint8_t> bytes = serialize(Object{});
  EXPECT_EQ(bytes.size(), 1u);
  EXPECT_TRUE(deserialize(bytes).is_null());
}

TEST_F(SerializeFixture, StreamIsSelfDescribing) {
  // The type name travels in the stream, like Java serialization.
  std::vector<std::uint8_t> bytes = serialize(Object::make(Point{5, 6, "x"}));
  std::string as_text(bytes.begin(), bytes.end());
  EXPECT_NE(as_text.find("test.Point"), std::string::npos);
}

TEST_F(SerializeFixture, NonSerializableTypeThrows) {
  EXPECT_THROW(serialize(Object::make(NoSerialize{42})), SerializationError);
}

TEST_F(SerializeFixture, NonSerializableFieldDetectedDeeply) {
  // Wrapper is declared serializable, but its field type is not — the
  // exact case Java detects at runtime with NotSerializableException.
  Wrapper w;
  w.inner.ticket = 1;
  w.note = "n";
  EXPECT_THROW(serialize(Object::make(w)), SerializationError);
}

TEST_F(SerializeFixture, SupportsSerializationProbe) {
  EXPECT_TRUE(supports_serialization(type_of<Polygon>()));
  EXPECT_FALSE(supports_serialization(type_of<NoSerialize>()));
  EXPECT_FALSE(supports_serialization(type_of<Wrapper>()));
  EXPECT_TRUE(supports_serialization(type_of<std::vector<Point>>()));
}

TEST_F(SerializeFixture, CorruptStreamsThrow) {
  std::vector<std::uint8_t> bytes = serialize(Object::make(Point{1, 2, "abc"}));
  // Truncation.
  std::vector<std::uint8_t> cut(bytes.begin(), bytes.end() - 2);
  EXPECT_THROW(deserialize(cut), ParseError);
  // Trailing garbage.
  std::vector<std::uint8_t> extra = bytes;
  extra.push_back(0xFF);
  EXPECT_THROW(deserialize(extra), ParseError);
  // Bad marker.
  std::vector<std::uint8_t> bad = bytes;
  bad[0] = 0x7F;
  EXPECT_THROW(deserialize(bad), ParseError);
  // Empty input.
  EXPECT_THROW(deserialize(std::vector<std::uint8_t>{}), ParseError);
}

TEST_F(SerializeFixture, UnknownTypeNameThrows) {
  util::ByteWriter w;
  w.write_u8(1);
  w.write_string("never.Registered");
  auto bytes = w.take();
  EXPECT_THROW(deserialize(bytes), ReflectionError);
}

TEST_F(SerializeFixture, SerializedFormSmallerThanToString) {
  // Sanity for the Table 8 ordering: binary < XML; string-concat smallest.
  Object o = Object::make(sample_polygon());
  std::string str = to_string(o);
  EXPECT_LT(serialize(o).size(), str.size() * 3);  // same magnitude
}

TEST_F(SerializeFixture, DeterministicBytes) {
  Object a = Object::make(sample_polygon());
  Object b = Object::make(sample_polygon());
  EXPECT_EQ(serialize(a), serialize(b));
}

}  // namespace
}  // namespace wsc::reflect
