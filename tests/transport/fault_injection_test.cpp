// FaultInjectingTransport: the seeded fault schedule must be deterministic
// (a logged seed reproduces the run), each fault kind must surface exactly
// the way the real HTTP stack would surface it, and the counters must
// account for every call.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "transport/fault_injection.hpp"
#include "transport/transport.hpp"
#include "util/error.hpp"
#include "util/uri.hpp"

namespace wsc::transport {
namespace {

const util::Uri kEndpoint = util::Uri::parse("inproc://svc/faulty");

/// Inner transport returning a canned body; counts how often it is reached.
class CannedTransport final : public Transport {
 public:
  explicit CannedTransport(std::string body = "<r>canned-response-body</r>")
      : body_(std::move(body)) {}

  WireResponse post(const util::Uri&, const WireRequest&) override {
    ++calls;
    WireResponse out;
    out.body = body_;
    return out;
  }

  int calls = 0;

 private:
  std::string body_;
};

WireRequest request() {
  WireRequest r;
  r.body = "<q/>";
  r.soap_action = "urn:Test#op";
  return r;
}

/// Run `n` calls and record the outcome of each one as a compact tag.
std::vector<std::string> outcome_trace(FaultInjectingTransport& transport,
                                       int n) {
  std::vector<std::string> trace;
  trace.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    try {
      WireResponse r = transport.post(kEndpoint, request());
      trace.push_back(r.body == "<r>canned-response-body</r>" ? "ok"
                                                              : "corrupt");
    } catch (const TimeoutError&) {
      trace.push_back("stall");
    } catch (const TransportError& e) {
      trace.push_back(std::string(e.what()).find("truncated") !=
                              std::string::npos
                          ? "truncate"
                          : "refuse");
    }
  }
  return trace;
}

FaultSpec mixed_spec(std::uint64_t seed) {
  FaultSpec spec;
  spec.seed = seed;
  spec.p_connect_refused = 0.15;
  spec.p_read_stall = 0.10;
  spec.p_truncate_body = 0.10;
  spec.p_corrupt_xml = 0.10;
  return spec;
}

TEST(FaultInjectionTest, SameSeedSameSchedule) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull, 20260805ull}) {
    SCOPED_TRACE("fault seed = " + std::to_string(seed));
    FaultInjectingTransport a(std::make_shared<CannedTransport>(),
                              mixed_spec(seed));
    FaultInjectingTransport b(std::make_shared<CannedTransport>(),
                              mixed_spec(seed));
    EXPECT_EQ(outcome_trace(a, 200), outcome_trace(b, 200));
  }
}

TEST(FaultInjectionTest, DifferentSeedsDifferentSchedules) {
  FaultInjectingTransport a(std::make_shared<CannedTransport>(),
                            mixed_spec(1));
  FaultInjectingTransport b(std::make_shared<CannedTransport>(),
                            mixed_spec(2));
  EXPECT_NE(outcome_trace(a, 200), outcome_trace(b, 200));
}

TEST(FaultInjectionTest, MixedScheduleProducesEveryFaultKindAndCountsAdd) {
  const std::uint64_t seed = 99;
  SCOPED_TRACE("fault seed = " + std::to_string(seed));
  auto inner = std::make_shared<CannedTransport>();
  FaultInjectingTransport transport(inner, mixed_spec(seed));
  outcome_trace(transport, 400);

  FaultInjectingTransport::Counters c = transport.counters();
  EXPECT_EQ(c.calls, 400u);
  EXPECT_GT(c.refused, 0u);
  EXPECT_GT(c.stalled, 0u);
  EXPECT_GT(c.truncated, 0u);
  EXPECT_GT(c.corrupted, 0u);
  // Refusals and stalls never reach the origin; truncation and corruption
  // do (the origin did the work before the connection died).
  EXPECT_EQ(static_cast<std::uint64_t>(inner->calls),
            c.calls - c.refused - c.stalled);
  // Every delivered response is either intact or corrupted.
  EXPECT_EQ(c.delivered + c.corrupted + c.truncated,
            static_cast<std::uint64_t>(inner->calls));
}

TEST(FaultInjectionTest, RefusalIsRetryableAndSkipsInner) {
  FaultSpec spec;
  spec.p_connect_refused = 1.0;
  auto inner = std::make_shared<CannedTransport>();
  FaultInjectingTransport transport(inner, spec);
  try {
    transport.post(kEndpoint, request());
    FAIL() << "expected TransportError";
  } catch (const TransportError& e) {
    EXPECT_TRUE(e.retryable());
    EXPECT_NE(std::string(e.what()).find("refused"), std::string::npos);
  }
  EXPECT_EQ(inner->calls, 0);
}

TEST(FaultInjectionTest, StallThrowsTimeoutError) {
  FaultSpec spec;
  spec.p_read_stall = 1.0;  // stall_latency stays 0: no real sleeping
  FaultInjectingTransport transport(std::make_shared<CannedTransport>(), spec);
  EXPECT_THROW(transport.post(kEndpoint, request()), TimeoutError);
  EXPECT_EQ(transport.counters().stalled, 1u);
}

TEST(FaultInjectionTest, TruncationReachesInnerThenThrowsRetryable) {
  FaultSpec spec;
  spec.p_truncate_body = 1.0;
  auto inner = std::make_shared<CannedTransport>();
  FaultInjectingTransport transport(inner, spec);
  try {
    transport.post(kEndpoint, request());
    FAIL() << "expected TransportError";
  } catch (const TransportError& e) {
    EXPECT_TRUE(e.retryable());
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
  }
  EXPECT_EQ(inner->calls, 1);  // the origin served the doomed response
}

TEST(FaultInjectionTest, CorruptionDeliversMangledBody) {
  FaultSpec spec;
  spec.p_corrupt_xml = 1.0;
  FaultInjectingTransport transport(std::make_shared<CannedTransport>(), spec);
  WireResponse r = transport.post(kEndpoint, request());
  EXPECT_NE(r.body, "<r>canned-response-body</r>");
  EXPECT_EQ(r.body.size(), std::string("<r>canned-response-body</r>").size());
  EXPECT_EQ(transport.counters().corrupted, 1u);
}

TEST(FaultInjectionTest, BurstOutageWindowFailsExactlyThoseCalls) {
  FaultSpec spec;  // all probabilities zero: only the window fails
  spec.outage_after = 3;
  spec.outage_length = 4;
  FaultInjectingTransport transport(std::make_shared<CannedTransport>(), spec);
  std::vector<std::string> trace = outcome_trace(transport, 10);
  std::vector<std::string> expected = {"ok",     "ok",     "ok",     "refuse",
                                       "refuse", "refuse", "refuse", "ok",
                                       "ok",     "ok"};
  EXPECT_EQ(trace, expected);
  EXPECT_EQ(transport.counters().outage_failures, 4u);
}

TEST(FaultInjectionTest, SpikeWindowDelaysExactlyThoseCallsIntact) {
  FaultSpec spec;  // all probabilities zero: only the spike window fires
  spec.spike_after = 2;
  spec.spike_length = 3;
  spec.spike_latency = std::chrono::milliseconds(30);
  auto inner = std::make_shared<CannedTransport>();
  FaultInjectingTransport transport(inner, spec);

  for (int i = 0; i < 7; ++i) {
    auto start = std::chrono::steady_clock::now();
    WireResponse r = transport.post(kEndpoint, request());
    auto elapsed = std::chrono::steady_clock::now() - start;
    // Spiked or not, the response is always delivered INTACT.
    EXPECT_EQ(r.body, "<r>canned-response-body</r>") << "call " << i;
    if (i >= 2 && i < 5) {
      EXPECT_GE(elapsed, spec.spike_latency) << "call " << i;
    } else {
      EXPECT_LT(elapsed, spec.spike_latency) << "call " << i;
    }
  }
  FaultInjectingTransport::Counters c = transport.counters();
  EXPECT_EQ(c.spiked, 3u);
  EXPECT_EQ(c.delivered, 7u);  // a spike is latency, never loss
  EXPECT_EQ(inner->calls, 7);
}

TEST(FaultInjectionTest, SpikeWindowOverridesTheDrawnFaultButNotTheStream) {
  // With p_connect_refused=1 every call outside the window refuses; inside
  // it the spike wins and the call is delivered — slow but intact.
  FaultSpec spec;
  spec.p_connect_refused = 1.0;
  spec.spike_after = 1;
  spec.spike_length = 2;
  spec.spike_latency = std::chrono::milliseconds(1);
  FaultInjectingTransport transport(std::make_shared<CannedTransport>(), spec);
  std::vector<std::string> trace = outcome_trace(transport, 5);
  std::vector<std::string> expected = {"refuse", "ok", "ok", "refuse",
                                       "refuse"};
  EXPECT_EQ(trace, expected);
  EXPECT_EQ(transport.counters().spiked, 2u);
}

TEST(FaultInjectionTest, SpikeWindowKeepsTheSeededScheduleAligned) {
  // The per-call RNG draw still happens inside the spike window, so two
  // transports with the same seed — one spiking, one not — must produce
  // the SAME fault schedule outside the window.
  const std::uint64_t seed = 20260807;
  SCOPED_TRACE("fault seed = " + std::to_string(seed));
  FaultSpec plain = mixed_spec(seed);
  FaultSpec spiking = mixed_spec(seed);
  spiking.spike_after = 10;
  spiking.spike_length = 5;
  spiking.spike_latency = std::chrono::milliseconds(0);
  FaultInjectingTransport a(std::make_shared<CannedTransport>(), plain);
  FaultInjectingTransport b(std::make_shared<CannedTransport>(), spiking);
  std::vector<std::string> trace_a = outcome_trace(a, 60);
  std::vector<std::string> trace_b = outcome_trace(b, 60);
  ASSERT_EQ(trace_a.size(), trace_b.size());
  for (std::size_t i = 0; i < trace_a.size(); ++i) {
    if (i >= 10 && i < 15) {
      EXPECT_EQ(trace_b[i], "ok") << "call " << i;  // the spike delivers
    } else {
      EXPECT_EQ(trace_a[i], trace_b[i]) << "call " << i;  // streams aligned
    }
  }
}

TEST(FaultInjectionTest, DownSwitchOverridesEverything) {
  auto inner = std::make_shared<CannedTransport>();
  FaultInjectingTransport transport(inner, FaultSpec{});
  transport.post(kEndpoint, request());
  transport.set_down(true);
  EXPECT_TRUE(transport.down());
  EXPECT_THROW(transport.post(kEndpoint, request()), TransportError);
  EXPECT_THROW(transport.post(kEndpoint, request()), TransportError);
  transport.set_down(false);
  EXPECT_NO_THROW(transport.post(kEndpoint, request()));
  FaultInjectingTransport::Counters c = transport.counters();
  EXPECT_EQ(c.down_failures, 2u);
  EXPECT_EQ(inner->calls, 2);  // down calls never reached the origin
}

TEST(FaultInjectionTest, SetSpecSwitchesPhasesMidRun) {
  auto inner = std::make_shared<CannedTransport>();
  FaultInjectingTransport transport(inner, FaultSpec{});  // clean phase
  for (int i = 0; i < 5; ++i) EXPECT_NO_THROW(transport.post(kEndpoint, request()));

  FaultSpec degraded;
  degraded.p_connect_refused = 1.0;
  transport.set_spec(degraded);  // degraded phase
  EXPECT_THROW(transport.post(kEndpoint, request()), TransportError);

  transport.set_spec(FaultSpec{});  // recovered
  EXPECT_NO_THROW(transport.post(kEndpoint, request()));
}

TEST(FaultInjectionTest, NullInnerRejected) {
  EXPECT_THROW(FaultInjectingTransport(nullptr, FaultSpec{}), Error);
}

}  // namespace
}  // namespace wsc::transport
