// Transport layer: in-process and HTTP transports, SOAP-over-HTTP glue.
#include <gtest/gtest.h>

#include <chrono>

#include "soap/deserializer.hpp"
#include "soap/serializer.hpp"
#include "tests/soap/test_service.hpp"
#include "transport/http_transport.hpp"
#include "xml/sax_parser.hpp"
#include "transport/inproc_transport.hpp"
#include "transport/soap_http.hpp"
#include "util/error.hpp"

namespace wsc::transport {
namespace {

using reflect::Object;
using wsc::soap::testing::make_test_service;
using wsc::soap::testing::test_description;

std::string echo_request_xml(const std::string& s) {
  soap::RpcRequest r;
  r.ns = "urn:Test";
  r.operation = "echoString";
  r.params = {{"s", Object::make(s)}};
  return soap::serialize_request(r);
}

std::string decode_echo(const std::string& response_xml) {
  return soap::read_response(xml::XmlTextSource(response_xml),
                             test_description()->require_operation("echoString"))
      .as<std::string>();
}

// --- InProcessTransport ---------------------------------------------------------

TEST(InProcessTransportTest, DispatchesToBoundService) {
  InProcessTransport transport;
  transport.bind("inproc://svc/a", make_test_service());
  WireResponse response = transport.post(util::Uri::parse("inproc://svc/a"),
                                         "urn:Test#echoString",
                                         echo_request_xml("hi"));
  EXPECT_EQ(decode_echo(response.body), "echo:hi");
  EXPECT_FALSE(response.not_modified);
}

TEST(InProcessTransportTest, UnboundEndpointThrows) {
  InProcessTransport transport;
  EXPECT_THROW(transport.post(util::Uri::parse("inproc://nowhere/x"), "a",
                              echo_request_xml("hi")),
               TransportError);
}

TEST(InProcessTransportTest, EndpointsAreIndependent) {
  InProcessTransport transport;
  auto service_a = make_test_service();
  auto service_b = make_test_service();
  service_b->bind("echoString", [](const std::vector<soap::Parameter>& p) {
    return Object::make("B:" + p.at(0).value.as<std::string>());
  });
  transport.bind("inproc://svc/a", service_a);
  transport.bind("inproc://svc/b", service_b);
  EXPECT_EQ(decode_echo(transport
                            .post(util::Uri::parse("inproc://svc/a"), "",
                                  echo_request_xml("x"))
                            .body),
            "echo:x");
  EXPECT_EQ(decode_echo(transport
                            .post(util::Uri::parse("inproc://svc/b"), "",
                                  echo_request_xml("x"))
                            .body),
            "B:x");
}

TEST(InProcessTransportTest, AdvertisedDirectivesAttached) {
  InProcessTransport transport;
  http::CacheDirectives d;
  d.max_age = std::chrono::seconds(77);
  transport.bind("inproc://svc/a", make_test_service(), d);
  WireResponse response = transport.post(util::Uri::parse("inproc://svc/a"),
                                         "", echo_request_xml("x"));
  ASSERT_TRUE(response.directives.max_age.has_value());
  EXPECT_EQ(response.directives.max_age->count(), 77);
}

TEST(InProcessTransportTest, SimulatedLatencyApplied) {
  InProcessTransport transport;
  transport.bind("inproc://svc/a", make_test_service());
  transport.set_latency(std::chrono::microseconds(20'000));
  auto t0 = std::chrono::steady_clock::now();
  transport.post(util::Uri::parse("inproc://svc/a"), "", echo_request_xml("x"));
  EXPECT_GE(std::chrono::steady_clock::now() - t0,
            std::chrono::milliseconds(20));
}

TEST(InProcessTransportTest, ConditionalRequestAnswered304) {
  InProcessTransport transport;
  transport.bind("inproc://svc/a", make_test_service(), {},
                 [](const std::string& op) {
                   EXPECT_EQ(op, "echoString");
                   return std::optional<std::chrono::seconds>(
                       std::chrono::seconds(100));
                 });
  WireRequest request;
  request.body = echo_request_xml("x");
  request.if_modified_since = std::chrono::seconds(100);
  WireResponse response =
      transport.post(util::Uri::parse("inproc://svc/a"), request);
  EXPECT_TRUE(response.not_modified);
  EXPECT_TRUE(response.body.empty());

  // Older validator: full response.
  request.if_modified_since = std::chrono::seconds(99);
  response = transport.post(util::Uri::parse("inproc://svc/a"), request);
  EXPECT_FALSE(response.not_modified);
  EXPECT_EQ(decode_echo(response.body), "echo:x");
}

// --- HttpTransport ---------------------------------------------------------------

TEST(HttpTransportTest, RejectsNonHttpScheme) {
  HttpTransport transport;
  EXPECT_THROW(transport.post(util::Uri::parse("inproc://svc/x"), "a", "b"),
               TransportError);
}

TEST(HttpTransportTest, PostsSoapAndDecodes) {
  auto server = serve_soap(0, "/svc", make_test_service());
  HttpTransport transport;
  util::Uri endpoint = util::Uri::parse(server->base_url() + "/svc");
  WireResponse response =
      transport.post(endpoint, "urn:Test#echoString", echo_request_xml("net"));
  EXPECT_EQ(decode_echo(response.body), "echo:net");
  server->stop();
}

TEST(HttpTransportTest, FaultArrivesWithBody) {
  auto server = serve_soap(0, "/svc", make_test_service());
  HttpTransport transport;
  soap::RpcRequest r;
  r.ns = "urn:Test";
  r.operation = "failOp";
  r.params = {{"msg", Object::make(std::string("bad"))}};
  WireResponse response =
      transport.post(util::Uri::parse(server->base_url() + "/svc"), "",
                     soap::serialize_request(r));
  EXPECT_NE(response.body.find("soapenv:Fault"), std::string::npos);
  server->stop();
}

TEST(HttpTransportTest, ConnectionsAreReused) {
  auto server = serve_soap(0, "/svc", make_test_service());
  HttpTransport transport;
  util::Uri endpoint = util::Uri::parse(server->base_url() + "/svc");
  for (int i = 0; i < 25; ++i) {
    WireResponse response = transport.post(
        endpoint, "", echo_request_xml("n" + std::to_string(i)));
    EXPECT_EQ(decode_echo(response.body), "echo:n" + std::to_string(i));
  }
  server->stop();
}

// --- soap_http glue ---------------------------------------------------------------

TEST(SoapHttpTest, RoutesOnlyConfiguredPath) {
  auto handler = make_soap_handler("/svc", make_test_service());
  http::Request request;
  request.method = "POST";
  request.target = "/other";
  EXPECT_EQ(handler(request).status, 404);
  request.target = "/svc";
  request.method = "GET";
  EXPECT_EQ(handler(request).status, 405);
}

TEST(SoapHttpTest, FaultMapsTo500) {
  auto handler = make_soap_handler("/svc", make_test_service());
  http::Request request;
  request.method = "POST";
  request.target = "/svc";
  request.body = "not soap";
  http::Response response = handler(request);
  EXPECT_EQ(response.status, 500);
  EXPECT_NE(response.body.find("soapenv:Fault"), std::string::npos);
}

TEST(SoapHttpTest, LastModifiedHeaderAttached) {
  auto handler = make_soap_handler(
      "/svc", make_test_service(), {}, [](const std::string&) {
        return std::optional<std::chrono::seconds>(std::chrono::seconds(3600));
      });
  http::Request request;
  request.method = "POST";
  request.target = "/svc";
  request.body = echo_request_xml("x");
  http::Response response = handler(request);
  EXPECT_EQ(response.status, 200);
  ASSERT_TRUE(response.headers.get("Last-Modified").has_value());
  EXPECT_EQ(http::parse_http_date(*response.headers.get("Last-Modified")),
            std::chrono::seconds(3600));
}

}  // namespace
}  // namespace wsc::transport
