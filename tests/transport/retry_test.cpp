// RetryingTransport: bounded retries with decorrelated-jitter backoff,
// per-call deadlines, the token-bucket retry budget, and the per-endpoint
// circuit breaker — all driven in virtual time through injected Deps.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "transport/retry.hpp"
#include "transport/transport.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"
#include "util/uri.hpp"

namespace wsc::transport {
namespace {

using std::chrono::milliseconds;

const util::Uri kEndpoint = util::Uri::parse("http://origin.example:8080/svc");
const util::Uri kOther = util::Uri::parse("http://other.example:9090/svc");

/// Inner transport running a per-call script: each entry either throws or
/// returns.  Runs the last entry forever once the script is exhausted.
class ScriptedTransport final : public Transport {
 public:
  using Step = std::function<WireResponse()>;

  static WireResponse ok() {
    WireResponse r;
    r.body = "<ok/>";
    return r;
  }
  static Step succeed() {
    return [] { return ok(); };
  }
  static Step fail_retryable() {
    return []() -> WireResponse {
      throw TransportError("connection refused (scripted)");
    };
  }
  static Step fail_terminal() {
    return []() -> WireResponse {
      throw TransportError("no such host (scripted)", /*retryable=*/false);
    };
  }
  static Step fail_http(int status) {
    return [status]() -> WireResponse {
      throw HttpError(status, "HTTP " + std::to_string(status) + " (scripted)");
    };
  }

  WireResponse post(const util::Uri&, const WireRequest&) override {
    ++calls;
    if (script.empty()) return ok();
    Step step = script.size() > 1 ? script.front() : script.back();
    if (script.size() > 1) script.erase(script.begin());
    return step();
  }

  std::vector<Step> script;
  int calls = 0;
};

/// Test rig: manual clock + sleeper that records each backoff and advances
/// the clock by it, so deadlines see the time retries would have burned.
struct Rig {
  explicit Rig(RetryPolicy policy,
               std::vector<ScriptedTransport::Step> script = {}) {
    inner = std::make_shared<ScriptedTransport>();
    inner->script = std::move(script);
    RetryingTransport::Deps deps;
    deps.clock = &clock;
    deps.jitter_seed = 7;
    deps.sleeper = [this](milliseconds d) {
      sleeps.push_back(d);
      clock.advance(d);
    };
    transport = std::make_shared<RetryingTransport>(inner, policy, deps);
  }

  WireResponse post() { return transport->post(kEndpoint, request()); }

  static WireRequest request() {
    WireRequest r;
    r.body = "<q/>";
    return r;
  }

  util::ManualClock clock;
  std::shared_ptr<ScriptedTransport> inner;
  std::shared_ptr<RetryingTransport> transport;
  std::vector<milliseconds> sleeps;
};

TEST(RetryTest, FirstTrySuccessMakesOneCallAndNoSleep) {
  Rig rig(RetryPolicy{});
  EXPECT_EQ(rig.post().body, "<ok/>");
  EXPECT_EQ(rig.inner->calls, 1);
  EXPECT_TRUE(rig.sleeps.empty());
  RetryCounters c = rig.transport->counters();
  EXPECT_EQ(c.attempts, 1u);
  EXPECT_EQ(c.retries, 0u);
  EXPECT_EQ(c.successes, 1u);
  EXPECT_EQ(c.failures, 0u);
}

TEST(RetryTest, TransientFaultsAbsorbedWithinMaxAttempts) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  Rig rig(policy, {ScriptedTransport::fail_retryable(),
                   ScriptedTransport::fail_retryable(),
                   ScriptedTransport::succeed()});
  EXPECT_EQ(rig.post().body, "<ok/>");
  EXPECT_EQ(rig.inner->calls, 3);
  EXPECT_EQ(rig.sleeps.size(), 2u);
  RetryCounters c = rig.transport->counters();
  EXPECT_EQ(c.attempts, 3u);
  EXPECT_EQ(c.retries, 2u);
  EXPECT_EQ(c.successes, 1u);
  EXPECT_EQ(c.failures, 0u);
}

TEST(RetryTest, ExhaustedAttemptsRethrowOriginalError) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  Rig rig(policy, {ScriptedTransport::fail_retryable()});
  EXPECT_THROW(rig.post(), TransportError);
  EXPECT_EQ(rig.inner->calls, 3);
  RetryCounters c = rig.transport->counters();
  EXPECT_EQ(c.failures, 1u);
  EXPECT_EQ(c.retries, 2u);
}

TEST(RetryTest, TerminalErrorNeverRetried) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  Rig rig(policy, {ScriptedTransport::fail_terminal()});
  try {
    rig.post();
    FAIL() << "expected TransportError";
  } catch (const TransportError& e) {
    EXPECT_FALSE(e.retryable());
  }
  EXPECT_EQ(rig.inner->calls, 1);
  EXPECT_TRUE(rig.sleeps.empty());
}

TEST(RetryTest, BackoffStaysWithinDecorrelatedJitterBounds) {
  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.base_backoff = milliseconds(10);
  policy.max_backoff = milliseconds(200);
  policy.breaker_threshold = 100;  // keep the breaker out of this test
  Rig rig(policy, {ScriptedTransport::fail_retryable()});
  EXPECT_THROW(rig.post(), TransportError);
  ASSERT_EQ(rig.sleeps.size(), 7u);
  milliseconds previous = policy.base_backoff;
  for (milliseconds d : rig.sleeps) {
    EXPECT_GE(d, policy.base_backoff);
    EXPECT_LE(d, policy.max_backoff);
    EXPECT_LE(d, std::max(3 * previous, policy.base_backoff));
    previous = std::max(d, policy.base_backoff);
  }
}

TEST(RetryTest, SameJitterSeedSameBackoffSchedule) {
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.breaker_threshold = 100;
  Rig a(policy, {ScriptedTransport::fail_retryable()});
  Rig b(policy, {ScriptedTransport::fail_retryable()});
  EXPECT_THROW(a.post(), TransportError);
  EXPECT_THROW(b.post(), TransportError);
  EXPECT_EQ(a.sleeps, b.sleeps);
}

TEST(RetryTest, DeadlineExceededThrowsNonRetryableTimeout) {
  RetryPolicy policy;
  policy.max_attempts = 100;
  policy.base_backoff = milliseconds(60);
  policy.max_backoff = milliseconds(60);
  policy.deadline = milliseconds(100);
  Rig rig(policy, {ScriptedTransport::fail_retryable()});
  try {
    rig.post();
    FAIL() << "expected TimeoutError";
  } catch (const TimeoutError& e) {
    EXPECT_FALSE(e.retryable());
    EXPECT_NE(std::string(e.what()).find("deadline"), std::string::npos);
  }
  // Far fewer than 100 attempts: the deadline cut the loop short.
  EXPECT_LT(rig.inner->calls, 5);
  EXPECT_EQ(rig.transport->counters().deadline_hits, 1u);
}

TEST(RetryTest, BackoffClampedToRemainingDeadline) {
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.base_backoff = milliseconds(80);
  policy.max_backoff = milliseconds(80);
  policy.deadline = milliseconds(100);
  Rig rig(policy, {ScriptedTransport::fail_retryable()});
  EXPECT_THROW(rig.post(), TimeoutError);
  for (milliseconds d : rig.sleeps) EXPECT_LE(d, policy.deadline);
}

TEST(RetryTest, BudgetExhaustionStopsRetriesNotFirstTries) {
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.budget_initial = 1.0;
  policy.budget_earn = 0.0;
  Rig rig(policy, {ScriptedTransport::fail_retryable()});

  // First post: spends the single token on its one retry.
  EXPECT_THROW(rig.post(), TransportError);
  EXPECT_EQ(rig.inner->calls, 2);
  // Second post: no tokens left — fails after the first attempt.
  EXPECT_THROW(rig.post(), TransportError);
  EXPECT_EQ(rig.inner->calls, 3);
  RetryCounters c = rig.transport->counters();
  EXPECT_EQ(c.budget_exhausted, 1u);
  EXPECT_LT(rig.transport->budget_tokens(), 1.0);
}

TEST(RetryTest, SuccessesEarnBudgetBack) {
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.budget_initial = 1.0;
  policy.budget_earn = 0.5;
  policy.budget_cap = 10.0;
  Rig rig(policy, {ScriptedTransport::fail_retryable(),
                   ScriptedTransport::fail_retryable(),  // post 1: spend 1
                   ScriptedTransport::succeed()});
  EXPECT_THROW(rig.post(), TransportError);
  double drained = rig.transport->budget_tokens();
  rig.post();  // success earns budget_earn
  EXPECT_DOUBLE_EQ(rig.transport->budget_tokens(), drained + 0.5);
}

TEST(RetryTest, TransientHttpStatusRetriedTerminalStatusNot) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  {
    Rig rig(policy, {ScriptedTransport::fail_http(503),
                     ScriptedTransport::succeed()});
    EXPECT_EQ(rig.post().body, "<ok/>");
    EXPECT_EQ(rig.inner->calls, 2);
  }
  {
    Rig rig(policy, {ScriptedTransport::fail_http(404),
                     ScriptedTransport::succeed()});
    EXPECT_THROW(rig.post(), HttpError);
    EXPECT_EQ(rig.inner->calls, 1);  // 404 is the origin's answer, not a fault
  }
}

// --- circuit breaker ------------------------------------------------------------

RetryPolicy breaker_policy() {
  RetryPolicy policy;
  policy.max_attempts = 1;  // isolate breaker behavior from retries
  policy.breaker_threshold = 3;
  policy.breaker_cooldown = milliseconds(1000);
  return policy;
}

TEST(BreakerTest, OpensAfterConsecutiveFailuresThenFastFails) {
  Rig rig(breaker_policy(), {ScriptedTransport::fail_retryable()});
  for (int i = 0; i < 3; ++i) EXPECT_THROW(rig.post(), TransportError);
  EXPECT_EQ(rig.transport->breaker_state(kEndpoint),
            RetryingTransport::BreakerState::Open);
  EXPECT_EQ(rig.transport->counters().breaker_opens, 1u);

  int calls_when_opened = rig.inner->calls;
  EXPECT_THROW(rig.post(), BreakerOpenError);
  EXPECT_THROW(rig.post(), BreakerOpenError);
  EXPECT_EQ(rig.inner->calls, calls_when_opened);  // fast fail: no wire calls
  EXPECT_EQ(rig.transport->counters().breaker_fast_fails, 2u);
}

TEST(BreakerTest, BreakerOpenErrorIsNotRetryable) {
  Rig rig(breaker_policy(), {ScriptedTransport::fail_retryable()});
  for (int i = 0; i < 3; ++i) EXPECT_THROW(rig.post(), TransportError);
  try {
    rig.post();
    FAIL() << "expected BreakerOpenError";
  } catch (const BreakerOpenError& e) {
    EXPECT_FALSE(e.retryable());
  }
}

TEST(BreakerTest, HalfOpenProbeSuccessClosesBreaker) {
  Rig rig(breaker_policy(), {ScriptedTransport::fail_retryable()});
  for (int i = 0; i < 3; ++i) EXPECT_THROW(rig.post(), TransportError);

  rig.clock.advance(milliseconds(1001));     // past cooldown
  rig.inner->script = {ScriptedTransport::succeed()};  // origin recovered
  EXPECT_EQ(rig.post().body, "<ok/>");       // the half-open probe
  EXPECT_EQ(rig.transport->breaker_state(kEndpoint),
            RetryingTransport::BreakerState::Closed);
  RetryCounters c = rig.transport->counters();
  EXPECT_EQ(c.breaker_probes, 1u);
  EXPECT_EQ(c.breaker_closes, 1u);
  EXPECT_EQ(rig.post().body, "<ok/>");       // back to normal traffic
}

TEST(BreakerTest, FailedProbeReopensForAnotherCooldown) {
  Rig rig(breaker_policy(), {ScriptedTransport::fail_retryable()});
  for (int i = 0; i < 3; ++i) EXPECT_THROW(rig.post(), TransportError);

  rig.clock.advance(milliseconds(1001));
  EXPECT_THROW(rig.post(), TransportError);  // probe goes out, still failing
  EXPECT_EQ(rig.transport->breaker_state(kEndpoint),
            RetryingTransport::BreakerState::Open);
  EXPECT_THROW(rig.post(), BreakerOpenError);  // fast-fail again

  rig.clock.advance(milliseconds(1001));
  rig.inner->script = {ScriptedTransport::succeed()};
  EXPECT_EQ(rig.post().body, "<ok/>");
  EXPECT_EQ(rig.transport->counters().breaker_probes, 2u);
}

TEST(BreakerTest, EndpointsTrackedIndependently) {
  Rig rig(breaker_policy(), {ScriptedTransport::fail_retryable()});
  for (int i = 0; i < 3; ++i) EXPECT_THROW(rig.post(), TransportError);
  EXPECT_EQ(rig.transport->breaker_state(kEndpoint),
            RetryingTransport::BreakerState::Open);
  // The other endpoint's breaker is untouched: its calls go to the wire.
  EXPECT_EQ(rig.transport->breaker_state(kOther),
            RetryingTransport::BreakerState::Closed);
  rig.inner->script = {ScriptedTransport::succeed()};
  EXPECT_EQ(rig.transport->post(kOther, Rig::request()).body, "<ok/>");
}

TEST(BreakerTest, SuccessResetsConsecutiveFailureCount) {
  Rig rig(breaker_policy());
  rig.inner->script = {
      ScriptedTransport::fail_retryable(), ScriptedTransport::fail_retryable(),
      ScriptedTransport::succeed(),  // resets the streak at 2 of 3
      ScriptedTransport::fail_retryable(), ScriptedTransport::fail_retryable(),
      ScriptedTransport::succeed()};
  EXPECT_THROW(rig.post(), TransportError);
  EXPECT_THROW(rig.post(), TransportError);
  rig.post();
  EXPECT_THROW(rig.post(), TransportError);
  EXPECT_THROW(rig.post(), TransportError);
  rig.post();
  EXPECT_EQ(rig.transport->breaker_state(kEndpoint),
            RetryingTransport::BreakerState::Closed);
  EXPECT_EQ(rig.transport->counters().breaker_opens, 0u);
}

TEST(RetryTest, ListenerEventsFire) {
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.breaker_threshold = 2;
  policy.deadline = milliseconds(0);
  Rig rig(policy, {ScriptedTransport::fail_retryable()});
  int retries = 0, opens = 0, probes = 0;
  RetryingTransport::Listener listener;
  listener.on_retry = [&] { ++retries; };
  listener.on_breaker_open = [&] { ++opens; };
  listener.on_breaker_probe = [&] { ++probes; };
  rig.transport->set_listener(std::move(listener));

  EXPECT_THROW(rig.post(), TransportError);  // 2 attempts = 1 retry, opens
  EXPECT_EQ(retries, 1);
  EXPECT_EQ(opens, 1);
  rig.clock.advance(milliseconds(3000));
  rig.inner->script = {ScriptedTransport::succeed()};
  rig.post();
  EXPECT_EQ(probes, 1);
}

}  // namespace
}  // namespace wsc::transport
