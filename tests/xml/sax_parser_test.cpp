#include "xml/sax_parser.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "xml/event_sequence.hpp"

namespace wsc::xml {
namespace {

/// Flattens events into a readable trace for compact assertions.
std::string trace(std::string_view doc) {
  struct Tracer : ContentHandler {
    std::string out;
    void start_document() override { out += "(doc "; }
    void end_document() override { out += ")"; }
    void start_element(const QName& n, const Attributes& attrs) override {
      out += "<" + (n.uri.empty() ? n.local : "{" + n.uri + "}" + n.local);
      for (const auto& a : attrs) {
        out += " " + (a.name.uri.empty() ? a.name.local
                                         : "{" + a.name.uri + "}" + a.name.local) +
               "='" + a.value + "'";
      }
      out += "> ";
    }
    void end_element(const QName& n) override { out += "</" + n.local + "> "; }
    void characters(std::string_view t) override {
      out += "'" + std::string(t) + "' ";
    }
  } tracer;
  SaxParser{}.parse(doc, tracer);
  return tracer.out;
}

TEST(SaxParserTest, MinimalDocument) {
  EXPECT_EQ(trace("<a/>"), "(doc <a> </a> )");
}

TEST(SaxParserTest, TextContent) {
  EXPECT_EQ(trace("<a>hello</a>"), "(doc <a> 'hello' </a> )");
}

TEST(SaxParserTest, NestedElements) {
  EXPECT_EQ(trace("<a><b>x</b><c/></a>"),
            "(doc <a> <b> 'x' </b> <c> </c> </a> )");
}

TEST(SaxParserTest, AttributesParsed) {
  EXPECT_EQ(trace("<a x=\"1\" y='2'/>"), "(doc <a x='1' y='2'> </a> )");
}

TEST(SaxParserTest, AttributeEntityExpansion) {
  EXPECT_EQ(trace("<a v=\"&lt;&amp;&gt;\"/>"), "(doc <a v='<&>'> </a> )");
}

TEST(SaxParserTest, TextEntityExpansion) {
  EXPECT_EQ(trace("<a>a&amp;b&#65;</a>"), "(doc <a> 'a&bA' </a> )");
}

TEST(SaxParserTest, CdataSectionIsLiteral) {
  EXPECT_EQ(trace("<a><![CDATA[<not-a-tag> & raw]]></a>"),
            "(doc <a> '<not-a-tag> & raw' </a> )");
}

TEST(SaxParserTest, CommentsAndPisSkipped) {
  EXPECT_EQ(trace("<?xml version=\"1.0\"?><!-- c --><a><!-- in -->x<?pi data?></a>"),
            "(doc <a> 'x' </a> )");
}

TEST(SaxParserTest, DoctypeSkipped) {
  EXPECT_EQ(trace("<!DOCTYPE a SYSTEM \"a.dtd\"><a/>"), "(doc <a> </a> )");
}

TEST(SaxParserTest, DefaultNamespaceApplied) {
  EXPECT_EQ(trace("<a xmlns=\"urn:x\"><b/></a>"),
            "(doc <{urn:x}a> <{urn:x}b> </b> </a> )");
}

TEST(SaxParserTest, PrefixedNamespaces) {
  EXPECT_EQ(trace("<p:a xmlns:p=\"urn:x\"><p:b/></p:a>"),
            "(doc <{urn:x}a> <{urn:x}b> </b> </a> )");
}

TEST(SaxParserTest, UnprefixedAttributeHasNoNamespace) {
  // Per XML-NS: default namespace does NOT apply to attributes.
  EXPECT_EQ(trace("<a xmlns=\"urn:x\" k=\"v\"/>"), "(doc <{urn:x}a k='v'> </a> )");
}

TEST(SaxParserTest, PrefixedAttributeResolved) {
  EXPECT_EQ(trace("<a xmlns:p=\"urn:x\" p:k=\"v\"/>"),
            "(doc <a {urn:x}k='v'> </a> )");
}

TEST(SaxParserTest, NamespaceRebinding) {
  EXPECT_EQ(trace("<p:a xmlns:p=\"urn:1\"><p:a xmlns:p=\"urn:2\"/><p:b/></p:a>"),
            "(doc <{urn:1}a> <{urn:2}a> </a> <{urn:1}b> </b> </a> )");
}

TEST(SaxParserTest, DefaultNamespaceUndeclaration) {
  EXPECT_EQ(trace("<a xmlns=\"urn:x\"><b xmlns=\"\"/></a>"),
            "(doc <{urn:x}a> <b> </b> </a> )");
}

TEST(SaxParserTest, XmlPrefixPredeclared) {
  EXPECT_EQ(trace("<a xml:lang=\"en\"/>"),
            "(doc <a {http://www.w3.org/XML/1998/namespace}lang='en'> </a> )");
}

TEST(SaxParserTest, WhitespaceBetweenElementsDelivered) {
  EXPECT_EQ(trace("<a> <b/> </a>"), "(doc <a> ' ' <b> </b> ' ' </a> )");
}

TEST(SaxParserTest, SoapEnvelopeShape) {
  const char* doc =
      "<?xml version=\"1.0\" encoding=\"UTF-8\"?>"
      "<soapenv:Envelope xmlns:soapenv=\"http://schemas.xmlsoap.org/soap/envelope/\">"
      "<soapenv:Body><ns1:doIt xmlns:ns1=\"urn:Svc\"><p>1</p></ns1:doIt>"
      "</soapenv:Body></soapenv:Envelope>";
  EXPECT_EQ(trace(doc),
            "(doc <{http://schemas.xmlsoap.org/soap/envelope/}Envelope> "
            "<{http://schemas.xmlsoap.org/soap/envelope/}Body> "
            "<{urn:Svc}doIt> <p> '1' </p> </doIt> </Body> </Envelope> )");
}

// --- well-formedness violations ---------------------------------------------

class SaxParserRejects : public ::testing::TestWithParam<const char*> {};

TEST_P(SaxParserRejects, ThrowsParseError) {
  struct Null : ContentHandler {
  } handler;
  EXPECT_THROW(SaxParser{}.parse(GetParam(), handler), ParseError);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, SaxParserRejects,
    ::testing::Values(
        "",                                  // empty input
        "just text",                         // no element
        "<a>",                               // unclosed element
        "<a></b>",                           // mismatched end tag
        "<a><b></a></b>",                    // interleaved
        "<a/><b/>",                          // two roots
        "<a attr></a>",                      // attribute without value
        "<a attr=novalue/>",                 // unquoted value
        "<a x=\"1\" x=\"2\"/>",              // duplicate attribute
        "<a>&undefined;</a>",                // unknown entity
        "<a>&#xZZ;</a>",                     // bad char ref
        "<p:a/>",                            // unbound prefix
        "<a xmlns:p=\"\"><p:b/></a>",        // empty prefix binding
        "<a><![CDATA[unterminated</a>",      // unterminated CDATA
        "<a><!-- unterminated</a>",          // unterminated comment
        "<a>]]></a>",                        // bare CDATA terminator
        "<a b=\"<\"/>",                      // '<' in attribute value
        "<a/>trailing",                      // content after root
        "<a x=\"1\"y=\"2\"/>",               // missing space between attrs
        "<a:b:c xmlns:a=\"urn:x\"/>"));      // double colon

TEST(SaxParserTest, RecordedSequenceMatchesDirectParse) {
  const char* doc = "<a xmlns=\"urn:x\" k=\"v\"><b>text &amp; more</b></a>";
  EventRecorder recorder;
  SaxParser{}.parse(doc, recorder);
  EventSequence seq = recorder.take();

  // Replaying the recording produces the identical trace.
  struct Tracer : ContentHandler {
    std::string out;
    void start_element(const QName& n, const Attributes&) override {
      out += "<" + n.local;
    }
    void end_element(const QName& n) override { out += ">" + n.local; }
    void characters(std::string_view t) override { out += std::string(t); }
  } from_replay, from_parse;
  seq.deliver(from_replay);
  SaxParser{}.parse(doc, from_parse);
  EXPECT_EQ(from_replay.out, from_parse.out);
}

}  // namespace
}  // namespace wsc::xml
