// Robustness sweeps: the SAX parser must never crash, hang or corrupt
// memory on hostile input — every outcome is either a successful parse or
// a wsc::ParseError.  (Poor-man's fuzzing with deterministic seeds.)
#include <gtest/gtest.h>

#include "soap/deserializer.hpp"
#include "soap/serializer.hpp"
#include "tests/soap/test_service.hpp"
#include "util/random.hpp"
#include "xml/dom.hpp"
#include "xml/sax_parser.hpp"

namespace wsc::xml {
namespace {

struct NullHandler : ContentHandler {};

/// Parse arbitrary bytes; the only acceptable failure is ParseError.
void parse_must_not_crash(const std::string& input) {
  NullHandler handler;
  try {
    SaxParser{}.parse(input, handler);
  } catch (const wsc::ParseError&) {
    // expected for malformed input
  }
}

TEST(FuzzTest, RandomBytesNeverCrash) {
  util::Rng rng(0xF00D);
  for (int i = 0; i < 300; ++i) {
    auto bytes = rng.next_bytes(rng.next_below(400));
    parse_must_not_crash(std::string(bytes.begin(), bytes.end()));
  }
}

TEST(FuzzTest, RandomMarkupSoupNeverCrashes) {
  static const char* kFragments[] = {
      "<",       ">",         "</",     "/>",    "<?",      "?>",
      "<!--",    "-->",       "<![CDATA[", "]]>", "&",      ";",
      "&amp;",   "&#x",       "=",      "\"",    "'",       "a",
      "xmlns",   "xmlns:p",   "<a",     "</a>",  " ",       "\n",
      "<a>",     "p:",        "<!DOCTYPE", "#",   "%",      "\0\x01",
  };
  util::Rng rng(0xBEEF);
  for (int i = 0; i < 500; ++i) {
    std::string doc;
    int n = static_cast<int>(1 + rng.next_below(30));
    for (int j = 0; j < n; ++j)
      doc += kFragments[rng.next_below(std::size(kFragments))];
    parse_must_not_crash(doc);
  }
}

TEST(FuzzTest, MutatedValidDocumentsNeverCrash) {
  const std::string valid =
      "<?xml version=\"1.0\"?><soapenv:Envelope "
      "xmlns:soapenv=\"http://schemas.xmlsoap.org/soap/envelope/\">"
      "<soapenv:Body><ns1:doIt xmlns:ns1=\"urn:Svc\">"
      "<p xsi:type=\"xsd:string\" xmlns:xsi=\"urn:x\">a&amp;b</p>"
      "</ns1:doIt></soapenv:Body></soapenv:Envelope>";
  util::Rng rng(0xCAFE);
  for (int i = 0; i < 500; ++i) {
    std::string doc = valid;
    int mutations = static_cast<int>(1 + rng.next_below(4));
    for (int m = 0; m < mutations; ++m) {
      if (doc.empty()) break;
      std::size_t pos = rng.next_below(doc.size());
      switch (rng.next_below(4)) {
        case 0: doc[pos] = static_cast<char>(rng.next_below(256)); break;
        case 1: doc.erase(pos, 1 + rng.next_below(5)); break;
        case 2: doc.insert(pos, 1, static_cast<char>(rng.next_below(128))); break;
        case 3: doc = doc.substr(0, pos); break;  // truncate
      }
    }
    parse_must_not_crash(doc);
  }
}

TEST(FuzzTest, DeeplyNestedDocumentBounded) {
  // 100k nesting levels: recursion-free parsing must survive (the element
  // stack is heap-allocated).
  std::string open, close;
  for (int i = 0; i < 100'000; ++i) {
    open += "<e>";
    close += "</e>";
  }
  NullHandler handler;
  SaxParser{}.parse(open + close, handler);
  SUCCEED();
}

TEST(FuzzTest, HugeAttributeAndTextValues) {
  std::string doc = "<a k=\"" + std::string(1 << 20, 'v') + "\">" +
                    std::string(1 << 20, 't') + "</a>";
  Document parsed = parse_document(doc);
  EXPECT_EQ(parsed.root->attribute("k").size(), std::size_t{1} << 20);
}

TEST(FuzzTest, SoapResponseReaderSurvivesMutations) {
  // The full decode pipeline (parser + ResponseReader + ValueReader) under
  // mutation: success or wsc::Error, never a crash.
  reflect::testing::ensure_test_types();
  const auto& op =
      wsc::soap::testing::test_description()->require_operation("echoPolygon");
  std::string valid = wsc::soap::serialize_response(
      op, "urn:Test",
      reflect::Object::make(reflect::testing::sample_polygon()));
  util::Rng rng(0xD1CE);
  for (int i = 0; i < 300; ++i) {
    std::string doc = valid;
    std::size_t pos = rng.next_below(doc.size());
    if (rng.next_bool()) {
      doc[pos] = static_cast<char>(rng.next_below(256));
    } else {
      doc.erase(pos, 1 + rng.next_below(20));
    }
    try {
      wsc::soap::read_response(XmlTextSource(doc), op);
    } catch (const wsc::Error&) {
      // any structured failure is fine
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace wsc::xml
