#include "xml/dom.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace wsc::xml {
namespace {

TEST(DomTest, BuildsTreeFromText) {
  Document doc = parse_document("<a><b>1</b><b>2</b><c k=\"v\"/></a>");
  ASSERT_TRUE(doc.root);
  EXPECT_EQ(doc.root->name().local, "a");
  EXPECT_EQ(doc.root->children().size(), 3u);
  EXPECT_EQ(doc.root->children_named("b").size(), 2u);
  EXPECT_EQ(doc.root->child("c")->attribute("k"), "v");
  EXPECT_EQ(doc.root->child("missing"), nullptr);
}

TEST(DomTest, TextContentConcatenatesDescendants) {
  Document doc = parse_document("<a>x<b>y</b>z</a>");
  EXPECT_EQ(doc.root->text_content(), "xyz");
}

TEST(DomTest, AdjacentTextMerged) {
  // Entity boundary creates multiple characters() events; DOM merges them.
  Document doc = parse_document("<a>x&amp;y</a>");
  ASSERT_EQ(doc.root->children().size(), 1u);
  EXPECT_EQ(doc.root->children()[0]->text(), "x&y");
}

TEST(DomTest, NamespacesPreserved) {
  Document doc = parse_document("<p:a xmlns:p=\"urn:x\"/>");
  EXPECT_EQ(doc.root->name().uri, "urn:x");
  EXPECT_EQ(doc.root->name().local, "a");
  EXPECT_EQ(doc.root->name().raw, "p:a");
}

TEST(DomTest, TypeMismatchAccessorsThrow) {
  Document doc = parse_document("<a>t</a>");
  const Node& text = *doc.root->children()[0];
  EXPECT_THROW(text.name(), Error);
  EXPECT_THROW(text.attributes(), Error);
  EXPECT_THROW(text.children(), Error);
  EXPECT_THROW(doc.root->text(), Error);
}

TEST(DomTest, ToXmlRoundTrips) {
  const char* text = "<a k=\"v\"><b>x &amp; y</b><c/></a>";
  Document doc = parse_document(text);
  EXPECT_EQ(doc.root->to_xml(), text);
}

TEST(DomTest, ToXmlEscapesAttributeQuotes) {
  Document a = parse_document("<a k=\"say &quot;hi&quot;\"/>");
  Document b = parse_document(a.root->to_xml());
  EXPECT_EQ(b.root->attribute("k"), "say \"hi\"");
}

TEST(DomTest, ManualConstruction) {
  NodePtr root = Node::make_element(QName{"", "root", "root"});
  root->append_child(Node::make_text("hello"));
  Node& child = root->append_child(Node::make_element(QName{"", "c", "c"}));
  child.append_child(Node::make_text("x"));
  EXPECT_EQ(root->to_xml(), "<root>hello<c>x</c></root>");
}

TEST(DomTest, BuilderRejectsTakeWithoutDocument) {
  DomBuilder builder;
  EXPECT_THROW(builder.take(), ParseError);
}

TEST(DomTest, DeepNestingSurvives) {
  std::string open, close;
  for (int i = 0; i < 200; ++i) {
    open += "<e>";
    close = "</e>" + close;
  }
  Document doc = parse_document(open + "x" + close);
  const Node* n = doc.root.get();
  int depth = 1;
  while (n->child("e")) {
    n = n->child("e");
    ++depth;
  }
  EXPECT_EQ(depth, 200);
  EXPECT_EQ(doc.root->text_content(), "x");
}

}  // namespace
}  // namespace wsc::xml
