#include "xml/writer.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "xml/dom.hpp"

namespace wsc::xml {
namespace {

TEST(WriterTest, EmptyElementCollapses) {
  Writer w(false);
  w.start_element("a").end_element();
  EXPECT_EQ(w.finish(), "<a/>");
}

TEST(WriterTest, DeclarationEmittedByDefault) {
  Writer w;
  w.start_element("a").end_element();
  EXPECT_EQ(w.finish(), "<?xml version=\"1.0\" encoding=\"UTF-8\"?><a/>");
}

TEST(WriterTest, NestedStructure) {
  Writer w(false);
  w.start_element("a");
  w.start_element("b").text("x").end_element();
  w.text_element("c", "y");
  w.end_element();
  EXPECT_EQ(w.finish(), "<a><b>x</b><c>y</c></a>");
}

TEST(WriterTest, AttributesBeforeContent) {
  Writer w(false);
  w.start_element("a").attribute("k", "v").attribute("n", "2");
  w.text("body").end_element();
  EXPECT_EQ(w.finish(), "<a k=\"v\" n=\"2\">body</a>");
}

TEST(WriterTest, TextIsEscaped) {
  Writer w(false);
  w.start_element("a").text("x < y & z").end_element();
  EXPECT_EQ(w.finish(), "<a>x &lt; y &amp; z</a>");
}

TEST(WriterTest, AttributeValueIsEscaped) {
  Writer w(false);
  w.start_element("a").attribute("k", "say \"hi\" & <go>").end_element();
  EXPECT_EQ(w.finish(), "<a k=\"say &quot;hi&quot; &amp; &lt;go&gt;\"/>");
}

TEST(WriterTest, RawBypassesEscaping) {
  Writer w(false);
  w.start_element("a").raw("QUJD+/==").end_element();
  EXPECT_EQ(w.finish(), "<a>QUJD+/==</a>");
}

TEST(WriterTest, AttributeAfterContentThrows) {
  Writer w(false);
  w.start_element("a").text("x");
  EXPECT_THROW(w.attribute("k", "v"), Error);
}

TEST(WriterTest, EndWithoutStartThrows) {
  Writer w(false);
  EXPECT_THROW(w.end_element(), Error);
}

TEST(WriterTest, FinishWithOpenElementThrows) {
  Writer w(false);
  w.start_element("a");
  EXPECT_THROW(w.finish(), Error);
}

TEST(WriterTest, DepthTracksNesting) {
  Writer w(false);
  EXPECT_EQ(w.depth(), 0u);
  w.start_element("a");
  w.start_element("b");
  EXPECT_EQ(w.depth(), 2u);
  w.end_element();
  EXPECT_EQ(w.depth(), 1u);
  w.end_element();
  w.finish();
}

TEST(WriterTest, OutputReparsesToSameStructure) {
  Writer w(false);
  w.start_element("root").attribute("id", "1");
  for (int i = 0; i < 3; ++i) w.text_element("item", "v" + std::to_string(i));
  w.end_element();
  Document doc = parse_document(w.finish());
  EXPECT_EQ(doc.root->name().local, "root");
  EXPECT_EQ(doc.root->children_named("item").size(), 3u);
  EXPECT_EQ(doc.root->attribute("id"), "1");
}

TEST(WriterTest, EscapedContentSurvivesRoundTrip) {
  std::string nasty = "a<b&c>\"d'\n\te";
  Writer w(false);
  w.start_element("x").attribute("k", nasty).text(nasty).end_element();
  Document doc = parse_document(w.finish());
  EXPECT_EQ(doc.root->attribute("k"), nasty);
  EXPECT_EQ(doc.root->text_content(), nasty);
}

}  // namespace
}  // namespace wsc::xml
