#include "xml/event_sequence.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "xml/dom.hpp"
#include "xml/sax_parser.hpp"

namespace wsc::xml {
namespace {

EventSequence record(std::string_view doc) {
  EventRecorder recorder;
  SaxParser{}.parse(doc, recorder);
  return recorder.take();
}

TEST(EventSequenceTest, RecordsAllEventTypes) {
  // doc + <a> + text + <b> + </b> + </a> + /doc = 7 events
  EventSequence seq = record("<a k=\"v\">text<b/></a>");
  ASSERT_EQ(seq.size(), 7u);
  EXPECT_EQ(seq.events()[0].type, EventType::StartDocument);
  EXPECT_EQ(seq.events()[1].type, EventType::StartElement);
  EXPECT_EQ(seq.events()[1].name.local, "a");
  ASSERT_EQ(seq.events()[1].attrs.size(), 1u);
  EXPECT_EQ(seq.events()[1].attrs[0].value, "v");
  EXPECT_EQ(seq.events()[2].type, EventType::Characters);
  EXPECT_EQ(seq.events()[2].text, "text");
  EXPECT_EQ(seq.events()[3].type, EventType::StartElement);
  EXPECT_EQ(seq.events()[4].type, EventType::EndElement);
  EXPECT_EQ(seq.events()[5].type, EventType::EndElement);
  EXPECT_EQ(seq.events()[6].type, EventType::EndDocument);
}

TEST(EventSequenceTest, SizeMatchesEventCount) {
  EventSequence seq = record("<a><b/><c/></a>");
  // doc + a + b + /b + c + /c + /a + /doc
  EXPECT_EQ(seq.size(), 8u);
}

TEST(EventSequenceTest, ReplayBuildsIdenticalDom) {
  const char* doc = "<r a=\"1\"><x>one</x><y ns=\"2\">two &amp; three</y></r>";
  EventSequence seq = record(doc);

  DomBuilder from_replay;
  seq.deliver(from_replay);
  Document replayed = from_replay.take();

  Document direct = parse_document(doc);
  EXPECT_EQ(replayed.root->to_xml(), direct.root->to_xml());
}

TEST(EventSequenceTest, ReplayIsRepeatable) {
  EventSequence seq = record("<a>x</a>");
  for (int i = 0; i < 3; ++i) {
    DomBuilder builder;
    seq.deliver(builder);
    EXPECT_EQ(builder.take().root->text_content(), "x");
  }
}

TEST(EventSequenceTest, MemorySizeGrowsWithContent) {
  EventSequence small = record("<a/>");
  EventSequence big = record("<a>" + std::string(10000, 'x') + "</a>");
  EXPECT_GT(big.memory_size(), small.memory_size() + 9000);
}

TEST(EventSequenceTest, EmptySequence) {
  EventSequence seq;
  EXPECT_TRUE(seq.empty());
  DomBuilder builder;
  seq.deliver(builder);  // no events, no crash
  EXPECT_THROW(builder.take(), ParseError);
}

TEST(TeeHandlerTest, DeliversToBothHandlers) {
  EventRecorder first, second;
  TeeHandler tee(first, second);
  SaxParser{}.parse("<a k=\"v\"><b>x</b></a>", tee);
  EXPECT_EQ(first.sequence().size(), second.sequence().size());
  ASSERT_GT(first.sequence().size(), 0u);
  // Independent recordings with identical content.
  for (std::size_t i = 0; i < first.sequence().size(); ++i) {
    EXPECT_EQ(first.sequence().events()[i].type,
              second.sequence().events()[i].type);
    EXPECT_EQ(first.sequence().events()[i].text,
              second.sequence().events()[i].text);
  }
}

TEST(TeeHandlerTest, DeserializeAndRecordInOneParse) {
  // The miss-path pattern: DOM build (stand-in for the deserializer) and
  // recording from one pass over the document.
  DomBuilder builder;
  EventRecorder recorder;
  TeeHandler tee(builder, recorder);
  SaxParser{}.parse("<a>payload</a>", tee);
  EXPECT_EQ(builder.take().root->text_content(), "payload");
  EXPECT_FALSE(recorder.sequence().empty());
}

}  // namespace
}  // namespace wsc::xml
