// Compact event sequences: the arena-backed recording must be a faithful,
// cheaper drop-in for the legacy EventSequence — identical replay event for
// event, identical DOM after a full round trip, strictly smaller footprint
// on repetitive documents, and ZERO heap allocations per event on replay.
#include "xml/compact_event_sequence.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <iterator>
#include <new>

#include "util/error.hpp"
#include "util/random.hpp"
#include "xml/dom.hpp"
#include "xml/sax_parser.hpp"

// ---- global allocation counter (for the zero-alloc replay assertion) --------
//
// Replacing the global operator new/delete is binary-wide; the counter only
// ticks while a test arms it, so the other suites in xml_tests are
// unaffected (beyond going through this malloc-backed implementation).

namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::size_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed))
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace wsc::xml {
namespace {

CompactEventSequence record_compact(std::string_view doc) {
  CompactEventRecorder recorder;
  SaxParser{}.parse(doc, recorder);
  return recorder.take();
}

EventSequence record_legacy(std::string_view doc) {
  EventRecorder recorder;
  SaxParser{}.parse(doc, recorder);
  return recorder.take();
}

/// Replay a compact sequence through the legacy recorder so the result can
/// be compared event for event against a direct legacy recording.
EventSequence replay_to_legacy(const CompactEventSequence& seq) {
  EventRecorder recorder;
  seq.deliver(recorder);
  return recorder.take();
}

void expect_same_events(const EventSequence& a, const EventSequence& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Event& ea = a.events()[i];
    const Event& eb = b.events()[i];
    ASSERT_EQ(ea.type, eb.type) << "event " << i;
    EXPECT_EQ(ea.name.uri, eb.name.uri) << "event " << i;
    EXPECT_EQ(ea.name.local, eb.name.local) << "event " << i;
    EXPECT_EQ(ea.name.raw, eb.name.raw) << "event " << i;
    EXPECT_EQ(ea.text, eb.text) << "event " << i;
    ASSERT_EQ(ea.attrs.size(), eb.attrs.size()) << "event " << i;
    for (std::size_t j = 0; j < ea.attrs.size(); ++j) {
      EXPECT_EQ(ea.attrs[j].name.raw, eb.attrs[j].name.raw);
      EXPECT_EQ(ea.attrs[j].name.uri, eb.attrs[j].name.uri);
      EXPECT_EQ(ea.attrs[j].name.local, eb.attrs[j].name.local);
      EXPECT_EQ(ea.attrs[j].value, eb.attrs[j].value);
    }
  }
}

TEST(CompactEventSequenceTest, RecordsAllEventTypes) {
  CompactEventSequence seq = record_compact("<a k=\"v\">text<b/></a>");
  ASSERT_EQ(seq.size(), 7u);
  using E = EventType;
  EXPECT_EQ(seq.events()[0].type, E::StartDocument);
  EXPECT_EQ(seq.events()[1].type, E::StartElement);
  EXPECT_EQ(seq.events()[2].type, E::Characters);
  EXPECT_EQ(seq.events()[3].type, E::StartElement);
  EXPECT_EQ(seq.events()[4].type, E::EndElement);
  EXPECT_EQ(seq.events()[5].type, E::EndElement);
  EXPECT_EQ(seq.events()[6].type, E::EndDocument);
  EXPECT_EQ(seq.arena_bytes(), 4u);  // "text"
}

TEST(CompactEventSequenceTest, ReplayBuildsIdenticalDom) {
  const char* doc = "<r a=\"1\"><x>one</x><y ns=\"2\">two &amp; three</y></r>";
  CompactEventSequence seq = record_compact(doc);

  DomBuilder from_replay;
  seq.deliver(from_replay);
  Document replayed = from_replay.take();

  Document direct = parse_document(doc);
  EXPECT_EQ(replayed.root->to_xml(), direct.root->to_xml());
}

TEST(CompactEventSequenceTest, ReplayIsRepeatable) {
  CompactEventSequence seq = record_compact("<a>x</a>");
  for (int i = 0; i < 3; ++i) {
    DomBuilder builder;
    seq.deliver(builder);
    EXPECT_EQ(builder.take().root->text_content(), "x");
  }
}

TEST(CompactEventSequenceTest, MatchesLegacyEventForEvent) {
  const char* doc =
      "<soapenv:Envelope "
      "xmlns:soapenv=\"http://schemas.xmlsoap.org/soap/envelope/\">"
      "<soapenv:Body><ns1:r xmlns:ns1=\"urn:Svc\">"
      "<item xsi:type=\"xsd:string\" xmlns:xsi=\"urn:x\">a&amp;b</item>"
      "<item xsi:type=\"xsd:string\" xmlns:xsi=\"urn:x\">c&lt;d</item>"
      "</ns1:r></soapenv:Body></soapenv:Envelope>";
  expect_same_events(replay_to_legacy(record_compact(doc)),
                     record_legacy(doc));
}

TEST(CompactEventSequenceTest, NastyCharacterDataSurvives) {
  // Entities, whitespace runs, embedded quotes and high-bit bytes.
  std::string doc =
      "<a q=\"it&apos;s &quot;fine&quot;\">  \n\t "
      "&lt;tag&gt; &amp;&amp; caf\xc3\xa9 \xe2\x82\xac</a>";
  expect_same_events(replay_to_legacy(record_compact(doc)),
                     record_legacy(doc));
}

// Property: for random well-formed documents the compact round trip is
// indistinguishable (event for event) from the legacy recording, and the
// replayed DOM equals the directly parsed DOM.
void gen_element(util::Rng& rng, std::string& out, int depth) {
  static const char* kNames[] = {"item", "snippet",  "URL", "ns1:result",
                                 "a",    "longName", "b"};
  const char* name = kNames[rng.next_below(std::size(kNames))];
  out += '<';
  out += name;
  if (std::string_view(name).find(':') != std::string_view::npos)
    out += " xmlns:ns1=\"urn:Rand\"";
  std::uint64_t nattrs = rng.next_below(3);
  for (std::uint64_t i = 0; i < nattrs; ++i)
    out += " k" + std::to_string(i) + "=\"" + rng.next_word(1, 8) + "\"";
  out += '>';
  std::uint64_t children = depth >= 4 ? 0 : rng.next_below(4);
  for (std::uint64_t i = 0; i < children; ++i) {
    if (rng.next_bool(0.4))
      out += rng.next_sentence(1 + rng.next_below(4));
    gen_element(rng, out, depth + 1);
  }
  if (rng.next_bool(0.6)) out += rng.next_word(1, 12);
  out += "</";
  out += name;
  out += '>';
}

TEST(CompactEventSequenceTest, RandomDocumentsMatchLegacyProperty) {
  util::Rng rng(0x5EED5EED);
  for (int iter = 0; iter < 50; ++iter) {
    std::string doc;
    gen_element(rng, doc, 0);
    SCOPED_TRACE("iter " + std::to_string(iter) + ": " + doc.substr(0, 120));

    CompactEventSequence compact = record_compact(doc);
    expect_same_events(replay_to_legacy(compact), record_legacy(doc));

    DomBuilder builder;
    compact.deliver(builder);
    EXPECT_EQ(builder.take().root->to_xml(),
              parse_document(doc).root->to_xml());
  }
}

TEST(CompactEventSequenceTest, InterningDeduplicatesNamesAndAttrLists) {
  std::string doc = "<list>";
  for (int i = 0; i < 100; ++i)
    doc += "<item xsi:type=\"xsd:string\" xmlns:xsi=\"urn:x\">v</item>";
  doc += "</list>";
  CompactEventSequence seq = record_compact(doc);
  // 100 repeated <item> elements intern to: list + item = 2 names, and
  // empty + the one repeated attribute list = 2 lists.
  EXPECT_EQ(seq.distinct_names(), 2u);
  EXPECT_EQ(seq.distinct_attr_lists(), 2u);
  // 1 start-doc + <list> + 100 * (start + chars + end) + </list> + end-doc.
  EXPECT_EQ(seq.size(), 304u);
  EXPECT_EQ(seq.arena_bytes(), 100u);
}

TEST(CompactEventSequenceTest, CompactBeatsLegacyFootprintOnRepetitiveDoc) {
  // A SOAP-shaped document: few distinct names, many repeats.
  std::string doc = "<r xmlns:e=\"urn:Env\">";
  util::Rng rng(42);
  for (int i = 0; i < 50; ++i)
    doc += "<e:item key=\"a\">" + rng.next_sentence(6) + "</e:item>";
  doc += "</r>";
  CompactEventSequence compact = record_compact(doc);
  EventSequence legacy = record_legacy(doc);
  EXPECT_LT(compact.memory_size() * 2, legacy.memory_size())
      << "compact=" << compact.memory_size()
      << " legacy=" << legacy.memory_size();
}

TEST(CompactEventSequenceTest, ZeroAllocationsDuringReplay) {
  // The hit-path promise: deliver() performs no heap allocation per event —
  // it hands out interned references and arena views only.  The counting
  // handler itself is allocation-free.
  struct CountingHandler : ContentHandler {
    std::size_t events = 0;
    std::size_t text_bytes = 0;
    void start_document() override { ++events; }
    void end_document() override { ++events; }
    void start_element(const QName&, const Attributes& attrs) override {
      events += 1 + attrs.size();
    }
    void end_element(const QName&) override { ++events; }
    void characters(std::string_view text) override {
      ++events;
      text_bytes += text.size();
    }
  };

  std::string doc = "<r>";
  for (int i = 0; i < 200; ++i)
    doc += "<item k=\"v\">some payload text number " + std::to_string(i) +
           "</item>";
  doc += "</r>";
  CompactEventSequence seq = record_compact(doc);

  CountingHandler handler;
  g_alloc_count.store(0);
  g_count_allocs.store(true);
  seq.deliver(handler);
  g_count_allocs.store(false);

  EXPECT_EQ(g_alloc_count.load(), 0u);
  EXPECT_EQ(handler.events, seq.size() + 200 /* one attr per item */);
  EXPECT_GT(handler.text_bytes, 0u);
}

TEST(CompactEventSequenceTest, EmptySequence) {
  CompactEventSequence seq;
  EXPECT_TRUE(seq.empty());
  EXPECT_EQ(seq.size(), 0u);
  DomBuilder builder;
  seq.deliver(builder);  // no events, no crash
  EXPECT_THROW(builder.take(), ParseError);
}

TEST(CompactEventRecorderTest, ReusableAfterTake) {
  CompactEventRecorder recorder;
  SaxParser{}.parse("<a>one</a>", recorder);
  CompactEventSequence first = recorder.take();
  SaxParser{}.parse("<b two=\"2\">two</b>", recorder);
  CompactEventSequence second = recorder.take();

  expect_same_events(replay_to_legacy(first), record_legacy("<a>one</a>"));
  expect_same_events(replay_to_legacy(second),
                     record_legacy("<b two=\"2\">two</b>"));
}

TEST(CompactEventRecorderTest, TeesWithLegacyRecorder) {
  // The miss-path pattern: one parse feeds the deserializer and both
  // recorders; the compact recording must match the legacy one.
  EventRecorder legacy;
  CompactEventRecorder compact;
  TeeHandler tee(legacy, compact);
  SaxParser{}.parse("<a k=\"v\"><b>x</b></a>", tee);
  expect_same_events(replay_to_legacy(compact.take()), legacy.take());
}

}  // namespace
}  // namespace wsc::xml
