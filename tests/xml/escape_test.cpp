#include "xml/escape.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace wsc::xml {
namespace {

TEST(EscapeTest, TextEscapesMarkupCharacters) {
  EXPECT_EQ(escape_text("a < b & c > d"), "a &lt; b &amp; c &gt; d");
  EXPECT_EQ(escape_text("no markup"), "no markup");
  EXPECT_EQ(escape_text(""), "");
}

TEST(EscapeTest, TextLeavesQuotesAlone) {
  EXPECT_EQ(escape_text("\"quoted\" and 'single'"), "\"quoted\" and 'single'");
}

TEST(EscapeTest, AttributeEscapesQuotesAndWhitespace) {
  EXPECT_EQ(escape_attribute("a\"b"), "a&quot;b");
  EXPECT_EQ(escape_attribute("line\nbreak"), "line&#10;break");
  EXPECT_EQ(escape_attribute("tab\there"), "tab&#9;here");
  EXPECT_EQ(escape_attribute("cr\rhere"), "cr&#13;here");
}

TEST(EscapeTest, UnescapePredefinedEntities) {
  EXPECT_EQ(unescape("&amp;&lt;&gt;&apos;&quot;"), "&<>'\"");
}

TEST(EscapeTest, UnescapeDecimalReference) {
  EXPECT_EQ(unescape("&#65;"), "A");
  EXPECT_EQ(unescape("&#10;"), "\n");
}

TEST(EscapeTest, UnescapeHexReference) {
  EXPECT_EQ(unescape("&#x41;"), "A");
  EXPECT_EQ(unescape("&#X4a;"), "J");
}

TEST(EscapeTest, UnescapeMultiByteUtf8) {
  EXPECT_EQ(unescape("&#233;"), "\xC3\xA9");          // e-acute, 2 bytes
  EXPECT_EQ(unescape("&#x20AC;"), "\xE2\x82\xAC");    // euro sign, 3 bytes
  EXPECT_EQ(unescape("&#x1F600;"), "\xF0\x9F\x98\x80");  // emoji, 4 bytes
}

TEST(EscapeTest, UnescapePassthrough) {
  EXPECT_EQ(unescape("plain text"), "plain text");
  EXPECT_EQ(unescape(""), "");
}

TEST(EscapeTest, UnescapeRejectsMalformed) {
  EXPECT_THROW(unescape("&unknown;"), ParseError);
  EXPECT_THROW(unescape("&amp"), ParseError);       // unterminated
  EXPECT_THROW(unescape("&#;"), ParseError);        // empty numeric
  EXPECT_THROW(unescape("&#xZZ;"), ParseError);     // bad hex digit
  EXPECT_THROW(unescape("&#x110000;"), ParseError); // beyond Unicode
  EXPECT_THROW(unescape("&#12a;"), ParseError);     // hex digit in decimal
}

TEST(EscapeTest, RoundTripTextThroughEscapeUnescape) {
  std::string nasty = "<tag attr=\"v\">a & b 'c'</tag>";
  EXPECT_EQ(unescape(escape_text(nasty)), nasty);
  EXPECT_EQ(unescape(escape_attribute(nasty)), nasty);
}

TEST(EscapeTest, AppendUtf8Boundaries) {
  std::string out;
  append_utf8(out, 0x7F);
  append_utf8(out, 0x80);
  append_utf8(out, 0x7FF);
  append_utf8(out, 0x800);
  append_utf8(out, 0xFFFF);
  append_utf8(out, 0x10000);
  append_utf8(out, 0x10FFFF);
  EXPECT_EQ(out.size(), 1u + 2 + 2 + 3 + 3 + 4 + 4);
  EXPECT_THROW(append_utf8(out, 0x110000), ParseError);
}

}  // namespace
}  // namespace wsc::xml
