#include "portal/query_string.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace wsc::portal {
namespace {

TEST(UrlCodecTest, EncodeKeepsUnreserved) {
  EXPECT_EQ(url_encode("AZaz09-._~"), "AZaz09-._~");
}

TEST(UrlCodecTest, EncodeEscapesReserved) {
  EXPECT_EQ(url_encode("a b&c=d/e?f"), "a%20b%26c%3Dd%2Fe%3Ff");
}

TEST(UrlCodecTest, DecodePercentAndPlus) {
  EXPECT_EQ(url_decode("a%20b+c"), "a b c");
  EXPECT_EQ(url_decode("%41%42"), "AB");
  EXPECT_EQ(url_decode("%e2%82%ac"), "\xE2\x82\xAC");  // lowercase hex ok
}

TEST(UrlCodecTest, RoundTrip) {
  for (const char* s : {"hello world", "q=a&b", "100% legit", "ümläut"}) {
    EXPECT_EQ(url_decode(url_encode(s)), s) << s;
  }
}

TEST(UrlCodecTest, DecodeRejectsMalformed) {
  EXPECT_THROW(url_decode("%"), ParseError);
  EXPECT_THROW(url_decode("%2"), ParseError);
  EXPECT_THROW(url_decode("%zz"), ParseError);
}

TEST(ParseTargetTest, PathOnly) {
  ParsedTarget t = parse_target("/portal");
  EXPECT_EQ(t.path, "/portal");
  EXPECT_TRUE(t.query.empty());
}

TEST(ParseTargetTest, QueryPairsDecoded) {
  ParsedTarget t = parse_target("/portal?q=web%20services&page=2");
  EXPECT_EQ(t.path, "/portal");
  EXPECT_EQ(t.query["q"], "web services");
  EXPECT_EQ(t.query["page"], "2");
}

TEST(ParseTargetTest, ValuelessKeysAndEmptySegments) {
  ParsedTarget t = parse_target("/p?flag&&x=1");
  EXPECT_EQ(t.query.count("flag"), 1u);
  EXPECT_EQ(t.query["flag"], "");
  EXPECT_EQ(t.query["x"], "1");
}

TEST(ParseTargetTest, EncodedKeyDecoded) {
  ParsedTarget t = parse_target("/p?my%20key=v");
  EXPECT_EQ(t.query["my key"], "v");
}

}  // namespace
}  // namespace wsc::portal
