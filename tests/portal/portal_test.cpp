// Portal site: page rendering over the caching middleware.
#include "portal/portal.hpp"

#include <gtest/gtest.h>

#include "services/google/service.hpp"
#include "transport/inproc_transport.hpp"

namespace wsc::portal {
namespace {

using services::google::GoogleBackend;
using services::google::make_google_service;

constexpr const char* kBackendEndpoint = "inproc://google/api";

PortalSite make_portal(std::shared_ptr<GoogleBackend> backend,
                       cache::Representation rep = cache::Representation::Auto) {
  auto transport = std::make_shared<transport::InProcessTransport>();
  transport->bind(kBackendEndpoint, make_google_service(std::move(backend)));
  PortalConfig config;
  config.backend_endpoint = kBackendEndpoint;
  config.transport = transport;
  config.options.policy = services::google::default_google_policy(rep);
  return PortalSite(std::move(config));
}

TEST(PortalTest, RendersResultsPage) {
  PortalSite portal = make_portal(std::make_shared<GoogleBackend>());
  std::string html = portal.render_page("distributed caching");
  EXPECT_NE(html.find("<html>"), std::string::npos);
  EXPECT_NE(html.find("Results for \"distributed caching\""), std::string::npos);
  EXPECT_NE(html.find("<li>"), std::string::npos);
}

TEST(PortalTest, QueryIsHtmlEscaped) {
  PortalSite portal = make_portal(std::make_shared<GoogleBackend>());
  std::string html = portal.render_page("<script>alert(1)</script>");
  EXPECT_EQ(html.find("<script>"), std::string::npos);
  EXPECT_NE(html.find("&lt;script&gt;"), std::string::npos);
}

TEST(PortalTest, RepeatedQueriesHitCache) {
  PortalSite portal = make_portal(std::make_shared<GoogleBackend>());
  std::string first = portal.render_page("same query");
  std::string second = portal.render_page("same query");
  EXPECT_EQ(first, second);
  EXPECT_EQ(portal.response_cache().stats().hits, 1u);
  EXPECT_EQ(portal.response_cache().stats().misses, 1u);
}

TEST(PortalTest, HandlerRoutesAndValidates) {
  PortalSite portal = make_portal(std::make_shared<GoogleBackend>());
  http::Handler handler = portal.handler();

  http::Request ok;
  ok.target = "/portal?q=caching";
  EXPECT_EQ(handler(ok).status, 200);
  EXPECT_EQ(*handler(ok).headers.get("Content-Type"), "text/html; charset=utf-8");

  http::Request wrong_path;
  wrong_path.target = "/elsewhere";
  EXPECT_EQ(handler(wrong_path).status, 404);

  http::Request no_query;
  no_query.target = "/portal";
  EXPECT_EQ(handler(no_query).status, 400);

  http::Request empty_query;
  empty_query.target = "/portal?q=";
  EXPECT_EQ(handler(empty_query).status, 400);
}

TEST(PortalTest, HandlerDecodesQuery) {
  PortalSite portal = make_portal(std::make_shared<GoogleBackend>());
  http::Request r;
  r.target = "/portal?q=web%20services%20caching";
  http::Response response = portal.handler()(r);
  EXPECT_NE(response.body.find("Results for \"web services caching\""),
            std::string::npos);
}

TEST(PortalTest, AllRepresentationsRenderIdenticalPages) {
  auto backend = std::make_shared<GoogleBackend>();
  std::string reference;
  for (cache::Representation rep :
       {cache::Representation::XmlMessage, cache::Representation::SaxEvents,
        cache::Representation::SaxEventsCompact,
        cache::Representation::Serialized, cache::Representation::ReflectionCopy,
        cache::Representation::CloneCopy, cache::Representation::Auto}) {
    PortalSite portal = make_portal(backend, rep);
    portal.render_page("fixed query");           // miss
    std::string hit = portal.render_page("fixed query");  // hit
    if (reference.empty()) reference = hit;
    EXPECT_EQ(hit, reference) << cache::representation_name(rep);
  }
}

TEST(PortalTest, SharedCacheAcrossPortalInstances) {
  auto transport = std::make_shared<transport::InProcessTransport>();
  transport->bind(kBackendEndpoint,
                  make_google_service(std::make_shared<GoogleBackend>()));
  auto shared_cache = std::make_shared<cache::ResponseCache>();

  auto make = [&] {
    PortalConfig config;
    config.backend_endpoint = kBackendEndpoint;
    config.transport = transport;
    config.options.policy = services::google::default_google_policy();
    config.response_cache = shared_cache;
    return PortalSite(std::move(config));
  };
  PortalSite a = make();
  PortalSite b = make();
  a.render_page("shared");
  b.render_page("shared");
  EXPECT_EQ(shared_cache->stats().hits, 1u);
}

}  // namespace
}  // namespace wsc::portal
