// Load simulator: exact hit-ratio control and report plumbing.
#include "portal/load_sim.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <set>
#include <thread>

#include "util/error.hpp"

namespace wsc::portal {
namespace {

TEST(LoadSimTest, RunsExactRequestCount) {
  int fetches = 0;
  LoadConfig config;
  config.concurrency = 1;
  config.requests_per_client = 50;
  config.hot_set_size = 4;
  LoadReport report =
      run_load(config, [&](int, const std::string&) { ++fetches; });
  // hot-set warmup + per-client warmup + measured requests
  EXPECT_EQ(fetches, 4 + 1 + 50);
  EXPECT_EQ(report.requests, 50u);
  EXPECT_EQ(report.latency.count(), 50u);
  EXPECT_GT(report.throughput_rps, 0.0);
}

TEST(LoadSimTest, HitRatioZeroUsesOnlyUniqueQueries) {
  std::set<std::string> queries;
  int measured = 0;
  LoadConfig config;
  config.requests_per_client = 40;
  config.hit_ratio = 0.0;
  config.hot_set_size = 4;
  run_load(config, [&](int, const std::string& q) {
    ++measured;
    if (q.rfind("miss-", 0) == 0) queries.insert(q);
  });
  EXPECT_EQ(measured, 4 + 1 + 40);  // warmups are all hot queries
  EXPECT_EQ(queries.size(), 40u);   // every measured request distinct
}

TEST(LoadSimTest, HitRatioOneUsesOnlyHotQueries) {
  std::set<std::string> measured_queries;
  int calls = 0;
  LoadConfig config;
  config.requests_per_client = 40;
  config.hit_ratio = 1.0;
  config.hot_set_size = 4;
  run_load(config, [&](int, const std::string& q) {
    ++calls;
    measured_queries.insert(q);
  });
  EXPECT_EQ(calls, 4 + 1 + 40);
  EXPECT_LE(measured_queries.size(), 4u);  // only hot-set members ever used
  for (const auto& q : measured_queries) EXPECT_EQ(q.find("hot-"), 0u) << q;
}

class HitRatioSweep : public ::testing::TestWithParam<double> {};

TEST_P(HitRatioSweep, AchievesTargetExactly) {
  int hot = 0, miss = 0, calls = 0;
  LoadConfig config;
  config.requests_per_client = 200;
  config.hit_ratio = GetParam();
  config.hot_set_size = 8;
  run_load(config, [&](int, const std::string& q) {
    if (++calls <= 8 + 1) return;  // hot-set + per-client warmup
    if (q.rfind("hot-", 0) == 0) ++hot;
    else ++miss;
  });
  EXPECT_EQ(hot + miss, 200);
  EXPECT_NEAR(static_cast<double>(hot) / 200.0, GetParam(), 0.01);
}

INSTANTIATE_TEST_SUITE_P(Ratios, HitRatioSweep,
                         ::testing::Values(0.0, 0.2, 0.4, 0.6, 0.8, 1.0));

TEST(LoadSimTest, ConcurrentClientsAllMeasured) {
  std::mutex mu;
  int fetches = 0;
  LoadConfig config;
  config.concurrency = 4;
  config.requests_per_client = 25;
  config.hot_set_size = 2;
  LoadReport report = run_load(config, [&](int, const std::string&) {
    std::lock_guard lock(mu);
    ++fetches;
  });
  EXPECT_EQ(fetches, 2 + 4 + 4 * 25);  // hot set + per-client warmups
  EXPECT_EQ(report.requests, 100u);
  EXPECT_EQ(report.latency.count(), 100u);
}

TEST(LoadSimTest, LatencyReflectsFetchCost) {
  LoadConfig config;
  config.requests_per_client = 10;
  LoadReport report = run_load(config, [&](int, const std::string&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  });
  EXPECT_GE(report.mean_response_ms(), 2.0);
  EXPECT_LT(report.throughput_rps, 500.0);
}

TEST(LoadSimTest, RejectsInvalidConfig) {
  PageFetcher nop = [](int, const std::string&) {};
  LoadConfig bad;
  bad.concurrency = 0;
  EXPECT_THROW(run_load(bad, nop), Error);
  bad = LoadConfig{};
  bad.hit_ratio = 1.5;
  EXPECT_THROW(run_load(bad, nop), Error);
  bad = LoadConfig{};
  bad.hot_set_size = 0;
  EXPECT_THROW(run_load(bad, nop), Error);
}

TEST(LoadSimTest, SeedVariesQueryNames) {
  std::set<std::string> q1, q2;
  LoadConfig config;
  config.requests_per_client = 10;
  config.hit_ratio = 1.0;
  config.seed = 1;
  run_load(config, [&](int, const std::string& q) { q1.insert(q); });
  config.seed = 2;
  run_load(config, [&](int, const std::string& q) { q2.insert(q); });
  for (const auto& q : q1) EXPECT_EQ(q2.count(q), 0u) << q;
}

}  // namespace
}  // namespace wsc::portal
