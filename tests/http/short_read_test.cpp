// Short-read / stalled-peer regression tests for HttpConnection (ISSUE 3
// satellite): a server that promises Content-Length bytes but closes early
// must surface a *retryable* TransportError — never a hang and never a
// silently short body — and an armed read deadline must turn a stalled
// peer into a TimeoutError.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <string>
#include <thread>

#include "http/client.hpp"
#include "http/socket.hpp"
#include "util/error.hpp"

namespace wsc::http {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

/// Raw-socket server running one scripted session per accepted connection.
class RawServer {
 public:
  using Session = std::function<void(TcpStream&)>;

  explicit RawServer(Session session, int sessions = 1) : listener_(0) {
    thread_ = std::thread([this, session, sessions] {
      for (int i = 0; i < sessions; ++i) {
        try {
          TcpStream s = listener_.accept();
          if (!s.valid()) return;  // listener shut down
          session(s);
        } catch (const Error&) {
          // A client vanishing mid-session is expected in these tests.
        }
      }
    });
  }

  ~RawServer() {
    listener_.shutdown();
    if (thread_.joinable()) thread_.join();
  }

  std::uint16_t port() const noexcept { return listener_.port(); }

 private:
  TcpListener listener_;
  std::thread thread_;
};

/// Read until the request head is complete (our client sends head + body in
/// one write, so this consumes the whole request).
std::string read_request(TcpStream& s) {
  std::string data;
  char buf[4096];
  while (data.find("\r\n\r\n") == std::string::npos) {
    std::size_t n = s.read_some(buf, sizeof(buf));
    if (n == 0) return data;
    data.append(buf, n);
  }
  return data;
}

/// Block until the peer closes (keeps the socket open without answering).
void wait_for_peer_close(TcpStream& s) {
  char buf[256];
  while (s.read_some(buf, sizeof(buf)) != 0) {
  }
}

TEST(ShortReadTest, TruncatedBodyIsRetryableErrorNotShortBody) {
  RawServer server([](TcpStream& s) {
    read_request(s);
    // Promise 100 bytes, deliver 30, vanish.
    s.write_all("HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\n" +
                std::string(30, 'x'));
  });

  HttpConnection conn("127.0.0.1", server.port());
  try {
    Response r = conn.round_trip(Request{});
    FAIL() << "truncated response was delivered as a " << r.body.size()
           << "-byte body instead of throwing";
  } catch (const TransportError& e) {
    EXPECT_TRUE(e.retryable());
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
        << e.what();
  }
}

TEST(ShortReadTest, TruncationMidHeadersAlsoThrows) {
  RawServer server([](TcpStream& s) {
    read_request(s);
    s.write_all("HTTP/1.1 200 OK\r\nContent-Le");  // cut inside the head
  });

  HttpConnection conn("127.0.0.1", server.port());
  EXPECT_THROW(conn.round_trip(Request{}), TransportError);
}

TEST(ShortReadTest, TruncationIsRecoveredByASecondAttempt) {
  // Session 1 truncates; session 2 answers properly — the error must be
  // retryable and the connection reusable, so a retry layer above can
  // absorb the fault with a second round_trip.
  int session = 0;
  RawServer server(
      [&session](TcpStream& s) {
        read_request(s);
        if (++session == 1) {
          s.write_all("HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\nhalf");
        } else {
          s.write_all("HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok");
          wait_for_peer_close(s);
        }
      },
      /*sessions=*/2);

  HttpConnection conn("127.0.0.1", server.port());
  EXPECT_THROW(conn.round_trip(Request{}), TransportError);
  EXPECT_EQ(conn.round_trip(Request{}).body, "ok");
}

TEST(ShortReadTest, HeaderStallHitsReadDeadlineInsteadOfHanging) {
  RawServer server([](TcpStream& s) {
    read_request(s);
    wait_for_peer_close(s);  // never answer
  });

  SocketOptions options;
  options.read_timeout = milliseconds(100);
  HttpConnection conn("127.0.0.1", server.port(), options);

  auto start = steady_clock::now();
  EXPECT_THROW(conn.round_trip(Request{}), TimeoutError);
  auto elapsed = steady_clock::now() - start;
  // Must be the armed deadline, not an OS-default multi-minute hang.
  EXPECT_LT(elapsed, std::chrono::seconds(5));
  EXPECT_GE(elapsed, milliseconds(90));
}

TEST(ShortReadTest, MidBodyStallHitsReadDeadline) {
  RawServer server([](TcpStream& s) {
    read_request(s);
    s.write_all("HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\npartial");
    wait_for_peer_close(s);  // stall with the body incomplete
  });

  SocketOptions options;
  options.read_timeout = milliseconds(100);
  HttpConnection conn("127.0.0.1", server.port(), options);
  EXPECT_THROW(conn.round_trip(Request{}), TimeoutError);
}

TEST(ShortReadTest, ArmedDeadlinesDoNotDisturbAHealthyExchange) {
  RawServer server([](TcpStream& s) {
    read_request(s);
    s.write_all("HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok");
    wait_for_peer_close(s);
  });

  SocketOptions options;
  options.connect_timeout = milliseconds(500);
  options.read_timeout = milliseconds(500);
  options.write_timeout = milliseconds(500);
  HttpConnection conn("127.0.0.1", server.port(), options);
  EXPECT_EQ(conn.round_trip(Request{}).body, "ok");
}

TEST(ShortReadTest, ConnectionRefusedIsRetryable) {
  std::uint16_t dead_port;
  {
    TcpListener probe(0);  // grab a port the OS considers free...
    dead_port = probe.port();
  }  // ...and close it, so connects are refused
  HttpConnection conn("127.0.0.1", dead_port);
  try {
    conn.round_trip(Request{});
    FAIL() << "expected TransportError";
  } catch (const TransportError& e) {
    EXPECT_TRUE(e.retryable());
  }
}

}  // namespace
}  // namespace wsc::http
