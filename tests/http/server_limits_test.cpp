// Configurable parser size caps surfaced as HTTP rejections (431/413),
// plus malformed-request handling — against both server modes.  A hostile
// peer costs one connection, never the process.
#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "http/client.hpp"
#include "http/parser.hpp"
#include "http/server.hpp"
#include "http/socket.hpp"
#include "util/error.hpp"

namespace wsc::http {
namespace {

Handler ok_handler() {
  return [](const Request&) {
    Response r;
    r.body = "ok";
    return r;
  };
}

class ServerLimitsTest : public ::testing::TestWithParam<ServerOptions::Mode> {
 protected:
  ServerOptions small_limits() const {
    ServerOptions o;
    o.mode = GetParam();
    o.limits.max_head_bytes = 2 * 1024;
    o.limits.max_body_bytes = 4 * 1024;
    return o;
  }
};

/// Read exactly one response off the socket (bounded), tolerating an
/// early server close after the status line has arrived.
Response read_one_response(TcpStream& s) {
  s.set_read_timeout(std::chrono::milliseconds(5'000));
  ResponseParser parser;
  char buf[4096];
  while (!parser.complete()) {
    std::size_t n = s.read_some(buf, sizeof(buf));
    if (n == 0) break;
    parser.feed(std::string_view(buf, n));
  }
  EXPECT_TRUE(parser.complete()) << "connection closed before full response";
  return parser.take();
}

void expect_still_serving(HttpServer& server) {
  HttpConnection conn("127.0.0.1", server.port());
  EXPECT_EQ(conn.round_trip(Request{}).body, "ok");
}

TEST_P(ServerLimitsTest, OversizedHeaderGets431) {
  HttpServer server(0, ok_handler(), small_limits());
  server.start();
  TcpStream s = TcpStream::connect("127.0.0.1", server.port());
  try {
    s.write_all("GET / HTTP/1.1\r\nHost: x\r\nX-Big: " +
                std::string(8 * 1024, 'h') + "\r\n\r\n");
  } catch (const TransportError&) {
    // The server may RST before we finish writing; the response (if any)
    // is checked below.
  }
  Response r = read_one_response(s);
  EXPECT_EQ(r.status, 431);
  EXPECT_EQ(r.headers.get("Connection"), "close");
  expect_still_serving(server);
  EXPECT_GE(server.stats().limit_rejected.load(), 1u);
  server.stop();
}

TEST_P(ServerLimitsTest, OversizedDeclaredBodyGets413BeforeUpload) {
  HttpServer server(0, ok_handler(), small_limits());
  server.start();
  TcpStream s = TcpStream::connect("127.0.0.1", server.port());
  // Only the head is sent: the server must reject on the DECLARED length,
  // without waiting for (or buffering) a single body byte.
  s.write_all("POST / HTTP/1.1\r\nHost: x\r\nContent-Length: 1000000\r\n\r\n");
  Response r = read_one_response(s);
  EXPECT_EQ(r.status, 413);
  EXPECT_EQ(r.headers.get("Connection"), "close");
  expect_still_serving(server);
  server.stop();
}

TEST_P(ServerLimitsTest, BodyAtTheCapStillAccepted) {
  ServerOptions o = small_limits();
  HttpServer server(0, ok_handler(), o);
  server.start();
  TcpStream s = TcpStream::connect("127.0.0.1", server.port());
  const std::string body(o.limits.max_body_bytes, 'b');
  s.write_all("POST / HTTP/1.1\r\nHost: x\r\nContent-Length: " +
              std::to_string(body.size()) + "\r\n\r\n" + body);
  Response r = read_one_response(s);
  EXPECT_EQ(r.status, 200);
  server.stop();
}

TEST_P(ServerLimitsTest, MalformedStartLineGets400) {
  HttpServer server(0, ok_handler(), small_limits());
  server.start();
  TcpStream s = TcpStream::connect("127.0.0.1", server.port());
  s.write_all("NOT-HTTP-AT-ALL\r\n\r\n");
  Response r = read_one_response(s);
  EXPECT_EQ(r.status, 400);
  expect_still_serving(server);
  server.stop();
}

TEST_P(ServerLimitsTest, NegativeContentLengthGets400) {
  HttpServer server(0, ok_handler(), small_limits());
  server.start();
  TcpStream s = TcpStream::connect("127.0.0.1", server.port());
  s.write_all("POST / HTTP/1.1\r\nHost: x\r\nContent-Length: -5\r\n\r\n");
  Response r = read_one_response(s);
  EXPECT_EQ(r.status, 400);
  expect_still_serving(server);
  server.stop();
}

TEST_P(ServerLimitsTest, RepeatedAbuseNeverKillsTheServer) {
  HttpServer server(0, ok_handler(), small_limits());
  server.start();
  for (int i = 0; i < 25; ++i) {
    TcpStream s = TcpStream::connect("127.0.0.1", server.port());
    try {
      switch (i % 3) {
        case 0:
          s.write_all("GET / HTTP/1.1\r\nJunk: " + std::string(4096, 'x'));
          break;
        case 1:
          s.write_all("POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n");
          break;
        case 2:
          s.write_all("\x01\x02\x03garbage\r\n\r\n");
          break;
      }
    } catch (const TransportError&) {
    }
    s.close();
  }
  expect_still_serving(server);
  server.stop();
}

INSTANTIATE_TEST_SUITE_P(
    Modes, ServerLimitsTest,
    ::testing::Values(ServerOptions::Mode::Threaded,
                      ServerOptions::Mode::Reactor),
    [](const ::testing::TestParamInfo<ServerOptions::Mode>& info) {
      return info.param == ServerOptions::Mode::Reactor ? "Reactor"
                                                        : "Threaded";
    });

}  // namespace
}  // namespace wsc::http
