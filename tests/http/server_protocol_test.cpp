// HTTP wire-protocol semantics, exercised identically against both server
// modes (threaded and epoll reactor): keep-alive defaults per HTTP
// version, Connection-header echo, fragmented and pipelined input.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "http/client.hpp"
#include "http/parser.hpp"
#include "http/server.hpp"
#include "http/socket.hpp"
#include "util/error.hpp"

namespace wsc::http {
namespace {

Handler echo_handler() {
  return [](const Request& request) {
    Response response;
    response.headers.set("Content-Type", "text/plain");
    response.body = request.method + " " + request.target + "|" + request.body;
    return response;
  };
}

class ServerProtocolTest
    : public ::testing::TestWithParam<ServerOptions::Mode> {
 protected:
  ServerOptions options() const {
    ServerOptions o;
    o.mode = GetParam();
    return o;
  }
};

/// Send raw bytes, then read (blocking, bounded) until `count` complete
/// responses have been parsed or the peer closes.
std::vector<Response> raw_exchange(TcpStream& s, std::string_view bytes,
                                   std::size_t count) {
  s.write_all(bytes);
  s.set_read_timeout(std::chrono::milliseconds(5'000));
  std::vector<Response> responses;
  ResponseParser parser;
  std::string pending;
  char buf[4096];
  while (responses.size() < count) {
    while (!parser.complete() && !pending.empty()) {
      std::size_t used = parser.feed(pending);
      pending.erase(0, used);
      if (used == 0) break;
    }
    while (!parser.complete()) {
      std::size_t n = s.read_some(buf, sizeof(buf));
      if (n == 0) return responses;  // server closed
      std::size_t used = parser.feed(std::string_view(buf, n));
      if (used < n) pending.append(buf + used, n - used);
    }
    responses.push_back(parser.take());
  }
  return responses;
}

/// True when the server closes the connection within the read timeout.
bool peer_closes(TcpStream& s) {
  s.set_read_timeout(std::chrono::milliseconds(5'000));
  char buf[256];
  try {
    return s.read_some(buf, sizeof(buf)) == 0;
  } catch (const Error&) {
    return true;  // RST counts as closed
  }
}

TEST_P(ServerProtocolTest, Http11DefaultsToKeepAliveAndEchoesIt) {
  HttpServer server(0, echo_handler(), options());
  server.start();
  TcpStream s = TcpStream::connect("127.0.0.1", server.port());
  auto first = raw_exchange(s, "GET /a HTTP/1.1\r\nHost: x\r\n\r\n", 1);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].headers.get("Connection"), "keep-alive");
  // The connection must still be usable for a second request.
  auto second = raw_exchange(s, "GET /b HTTP/1.1\r\nHost: x\r\n\r\n", 1);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].body, "GET /b|");
  server.stop();
}

TEST_P(ServerProtocolTest, Http11ConnectionCloseIsHonoredAndEchoed) {
  HttpServer server(0, echo_handler(), options());
  server.start();
  TcpStream s = TcpStream::connect("127.0.0.1", server.port());
  auto r = raw_exchange(
      s, "GET / HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n", 1);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].headers.get("Connection"), "close");
  EXPECT_TRUE(peer_closes(s));
  server.stop();
}

// Regression (ISSUE 9): the server used to keep HTTP/1.0 connections open
// by default, deadlocking 1.0 clients that wait for EOF to delimit the
// response.  RFC 7230 §6.3: 1.0 closes unless the client opted in.
TEST_P(ServerProtocolTest, Http10DefaultsToClose) {
  HttpServer server(0, echo_handler(), options());
  server.start();
  TcpStream s = TcpStream::connect("127.0.0.1", server.port());
  auto r = raw_exchange(s, "GET /old HTTP/1.0\r\nHost: x\r\n\r\n", 1);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].body, "GET /old|");
  EXPECT_EQ(r[0].headers.get("Connection"), "close");
  EXPECT_TRUE(peer_closes(s));
  server.stop();
}

TEST_P(ServerProtocolTest, Http10KeepAliveOptInPersists) {
  HttpServer server(0, echo_handler(), options());
  server.start();
  TcpStream s = TcpStream::connect("127.0.0.1", server.port());
  auto first = raw_exchange(
      s, "GET /a HTTP/1.0\r\nHost: x\r\nConnection: keep-alive\r\n\r\n", 1);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].headers.get("Connection"), "keep-alive");
  auto second = raw_exchange(
      s, "GET /b HTTP/1.0\r\nHost: x\r\nConnection: keep-alive\r\n\r\n", 1);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].body, "GET /b|");
  server.stop();
}

TEST_P(ServerProtocolTest, ByteAtATimeRequestIsAssembled) {
  HttpServer server(0, echo_handler(), options());
  server.start();
  TcpStream s = TcpStream::connect("127.0.0.1", server.port());
  const std::string request =
      "POST /frag HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
  for (char c : request) {
    s.write_all(std::string_view(&c, 1));
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  auto r = raw_exchange(s, "", 1);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].body, "POST /frag|hello");
  server.stop();
}

TEST_P(ServerProtocolTest, PipelinedRequestsAllAnswersInOrder) {
  HttpServer server(0, echo_handler(), options());
  server.start();
  TcpStream s = TcpStream::connect("127.0.0.1", server.port());
  std::string burst;
  for (int i = 0; i < 8; ++i)
    burst += "GET /p/" + std::to_string(i) + " HTTP/1.1\r\nHost: x\r\n\r\n";
  auto responses = raw_exchange(s, burst, 8);
  ASSERT_EQ(responses.size(), 8u);
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(responses[i].body, "GET /p/" + std::to_string(i) + "|");
  server.stop();
}

TEST_P(ServerProtocolTest, PipelineSplitAcrossArbitraryReads) {
  HttpServer server(0, echo_handler(), options());
  server.start();
  TcpStream s = TcpStream::connect("127.0.0.1", server.port());
  std::string burst;
  for (int i = 0; i < 4; ++i)
    burst += "POST /s/" + std::to_string(i) +
             " HTTP/1.1\r\nHost: x\r\nContent-Length: 3\r\n\r\nabc";
  // Fragment the pipelined burst at awkward boundaries (mid-header,
  // mid-body) so requests straddle reads.
  for (std::size_t off = 0; off < burst.size(); off += 7) {
    s.write_all(std::string_view(burst).substr(off, 7));
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  auto responses = raw_exchange(s, "", 4);
  ASSERT_EQ(responses.size(), 4u);
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(responses[i].body, "POST /s/" + std::to_string(i) + "|abc");
  server.stop();
}

TEST_P(ServerProtocolTest, HandlerThrowingNonStdExceptionYields500) {
  Handler thrower = [](const Request& request) -> Response {
    if (request.target == "/boom") throw 42;  // not a std::exception
    Response r;
    r.body = "ok";
    return r;
  };
  HttpServer server(0, thrower, options());
  server.start();
  TcpStream s = TcpStream::connect("127.0.0.1", server.port());
  auto r = raw_exchange(s, "GET /boom HTTP/1.1\r\nHost: x\r\n\r\n", 1);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].status, 500);
  // Server (and this very connection) still serving.
  auto ok = raw_exchange(s, "GET /fine HTTP/1.1\r\nHost: x\r\n\r\n", 1);
  ASSERT_EQ(ok.size(), 1u);
  EXPECT_EQ(ok[0].body, "ok");
  server.stop();
}

INSTANTIATE_TEST_SUITE_P(
    Modes, ServerProtocolTest,
    ::testing::Values(ServerOptions::Mode::Threaded,
                      ServerOptions::Mode::Reactor),
    [](const ::testing::TestParamInfo<ServerOptions::Mode>& info) {
      return info.param == ServerOptions::Mode::Reactor ? "Reactor"
                                                        : "Threaded";
    });

}  // namespace
}  // namespace wsc::http
