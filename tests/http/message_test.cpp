#include "http/message.hpp"

#include <gtest/gtest.h>

namespace wsc::http {
namespace {

TEST(HeadersTest, SetReplacesCaseInsensitively) {
  Headers h;
  h.set("Content-Type", "text/xml");
  h.set("content-type", "text/html");
  EXPECT_EQ(h.all().size(), 1u);
  EXPECT_EQ(*h.get("CONTENT-TYPE"), "text/html");
}

TEST(HeadersTest, AddAppendsDuplicates) {
  Headers h;
  h.add("Set-Cookie", "a=1");
  h.add("Set-Cookie", "b=2");
  EXPECT_EQ(h.all().size(), 2u);
  EXPECT_EQ(*h.get("set-cookie"), "a=1");  // first match
}

TEST(HeadersTest, GetMissingReturnsNullopt) {
  Headers h;
  EXPECT_FALSE(h.get("X-Missing").has_value());
  EXPECT_FALSE(h.contains("X-Missing"));
}

TEST(RequestTest, ToBytesAddsContentLength) {
  Request r;
  r.method = "POST";
  r.target = "/soap";
  r.headers.set("Host", "h");
  r.body = "12345";
  std::string bytes = r.to_bytes();
  EXPECT_EQ(bytes.find("POST /soap HTTP/1.1\r\n"), 0u);
  EXPECT_NE(bytes.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_NE(bytes.find("\r\n\r\n12345"), std::string::npos);
}

TEST(RequestTest, ExplicitContentLengthNotDuplicated) {
  Request r;
  r.headers.set("Content-Length", "0");
  std::string bytes = r.to_bytes();
  EXPECT_EQ(bytes.find("Content-Length"), bytes.rfind("Content-Length"));
}

TEST(ResponseTest, ToBytesUsesStandardReason) {
  Response r;
  r.status = 404;
  EXPECT_EQ(r.to_bytes().find("HTTP/1.1 404 Not Found\r\n"), 0u);
}

TEST(ResponseTest, CustomReasonPreserved) {
  Response r;
  r.status = 200;
  r.reason = "Totally Fine";
  EXPECT_EQ(r.to_bytes().find("HTTP/1.1 200 Totally Fine\r\n"), 0u);
}

TEST(ReasonPhraseTest, CoversCommonStatuses) {
  EXPECT_EQ(reason_phrase(200), "OK");
  EXPECT_EQ(reason_phrase(304), "Not Modified");
  EXPECT_EQ(reason_phrase(500), "Internal Server Error");
  EXPECT_EQ(reason_phrase(999), "Unknown");
}

}  // namespace
}  // namespace wsc::http
