#include "http/parser.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace wsc::http {
namespace {

TEST(RequestParserTest, ParsesCompleteRequest) {
  RequestParser p;
  std::string raw =
      "POST /soap HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nbody";
  EXPECT_EQ(p.feed(raw), raw.size());
  ASSERT_TRUE(p.complete());
  Request r = p.take();
  EXPECT_EQ(r.method, "POST");
  EXPECT_EQ(r.target, "/soap");
  EXPECT_EQ(*r.headers.get("host"), "h");
  EXPECT_EQ(r.body, "body");
}

TEST(RequestParserTest, ByteAtATimeFeeding) {
  RequestParser p;
  std::string raw = "GET /x HTTP/1.1\r\nA: 1\r\nContent-Length: 3\r\n\r\nabc";
  for (char c : raw) {
    ASSERT_FALSE(p.complete());
    EXPECT_EQ(p.feed(std::string_view(&c, 1)), 1u);
  }
  EXPECT_TRUE(p.complete());
  EXPECT_EQ(p.take().body, "abc");
}

TEST(RequestParserTest, NoBodyWithoutContentLength) {
  RequestParser p;
  p.feed("GET / HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(p.complete());
  EXPECT_TRUE(p.take().body.empty());
}

TEST(RequestParserTest, PipelinedRequestsConsumePartially) {
  RequestParser p;
  std::string two =
      "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
  std::size_t used = p.feed(two);
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.take().target, "/a");
  // Leftover bytes belong to the next message.
  std::size_t used2 = p.feed(std::string_view(two).substr(used));
  EXPECT_EQ(used + used2, two.size());
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.take().target, "/b");
}

TEST(RequestParserTest, HeaderWhitespaceTrimmed) {
  RequestParser p;
  p.feed("GET / HTTP/1.1\r\nKey:    spaced value   \r\n\r\n");
  EXPECT_EQ(*p.take().headers.get("Key"), "spaced value");
}

TEST(RequestParserTest, RejectsMalformedStartLine) {
  RequestParser p;
  EXPECT_THROW(p.feed("NOT A REQUEST LINE AT ALL\r\n\r\n"), ParseError);
  RequestParser p2;
  EXPECT_THROW(p2.feed("GET / HTTP/2.0\r\n\r\n"), ParseError);
}

TEST(RequestParserTest, RejectsMalformedHeader) {
  RequestParser p;
  EXPECT_THROW(p.feed("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"), ParseError);
}

TEST(RequestParserTest, RejectsChunkedEncoding) {
  RequestParser p;
  EXPECT_THROW(
      p.feed("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
      ParseError);
}

TEST(RequestParserTest, RejectsNegativeContentLength) {
  RequestParser p;
  EXPECT_THROW(p.feed("POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n"),
               ParseError);
}

TEST(RequestParserTest, TakeBeforeCompleteThrows) {
  RequestParser p;
  p.feed("GET / HTTP/1.1\r\n");
  EXPECT_THROW(p.take(), ParseError);
}

TEST(ResponseParserTest, ParsesResponse) {
  ResponseParser p;
  p.feed("HTTP/1.1 200 OK\r\nContent-Length: 2\r\nX: y\r\n\r\nhi");
  ASSERT_TRUE(p.complete());
  Response r = p.take();
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.reason, "OK");
  EXPECT_EQ(r.body, "hi");
}

TEST(ResponseParserTest, ReasonWithSpaces) {
  ResponseParser p;
  p.feed("HTTP/1.1 500 Internal Server Error\r\n\r\n");
  Response r = p.take();
  EXPECT_EQ(r.status, 500);
  EXPECT_EQ(r.reason, "Internal Server Error");
}

TEST(ResponseParserTest, EmptyReasonAllowed) {
  ResponseParser p;
  p.feed("HTTP/1.1 204\r\n\r\n");
  EXPECT_EQ(p.take().status, 204);
}

TEST(ResponseParserTest, SplitAcrossHeaderBoundary) {
  // The CRLFCRLF terminator split between feeds.
  ResponseParser p;
  p.feed("HTTP/1.1 200 OK\r\nContent-Length: 1\r\n\r");
  EXPECT_FALSE(p.complete());
  p.feed("\nZ");
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.take().body, "Z");
}

TEST(ResponseParserTest, ParserReusableAfterTake) {
  ResponseParser p;
  p.feed("HTTP/1.1 200 OK\r\n\r\n");
  p.take();
  p.feed("HTTP/1.1 404 Not Found\r\n\r\n");
  EXPECT_EQ(p.take().status, 404);
}

TEST(ResponseParserTest, RejectsGarbageStatusLine) {
  ResponseParser p;
  EXPECT_THROW(p.feed("SIP/2.0 200 OK\r\n\r\n"), ParseError);
  ResponseParser p2;
  EXPECT_THROW(p2.feed("HTTP/1.1\r\n\r\n"), ParseError);
  ResponseParser p3;
  EXPECT_THROW(p3.feed("HTTP/1.1 abc OK\r\n\r\n"), ParseError);
}

TEST(RoundTripTest, MessageToBytesReparses) {
  Request r;
  r.method = "POST";
  r.target = "/x?q=1";
  r.headers.set("SOAPAction", "\"urn:x#op\"");
  r.body = std::string(1000, 'b');
  RequestParser p;
  std::string bytes = r.to_bytes();
  EXPECT_EQ(p.feed(bytes), bytes.size());
  Request back = p.take();
  EXPECT_EQ(back.method, r.method);
  EXPECT_EQ(back.target, r.target);
  EXPECT_EQ(*back.headers.get("soapaction"), "\"urn:x#op\"");
  EXPECT_EQ(back.body, r.body);
}

}  // namespace
}  // namespace wsc::http
