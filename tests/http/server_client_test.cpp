// Integration tests for the HTTP server + client over real loopback TCP.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "http/client.hpp"
#include "http/server.hpp"
#include "util/error.hpp"

namespace wsc::http {
namespace {

Handler echo_handler() {
  return [](const Request& request) {
    Response response;
    response.headers.set("Content-Type", "text/plain");
    response.body = request.method + " " + request.target + "|" + request.body;
    return response;
  };
}

TEST(HttpServerClientTest, BasicRoundTrip) {
  HttpServer server(0, echo_handler());
  server.start();
  HttpConnection conn("127.0.0.1", server.port());
  Request r;
  r.method = "POST";
  r.target = "/echo";
  r.body = "hello";
  Response resp = conn.round_trip(r);
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, "POST /echo|hello");
  server.stop();
}

TEST(HttpServerClientTest, KeepAliveReusesConnection) {
  HttpServer server(0, echo_handler());
  server.start();
  HttpConnection conn("127.0.0.1", server.port());
  for (int i = 0; i < 20; ++i) {
    Request r;
    r.target = "/n/" + std::to_string(i);
    Response resp = conn.round_trip(r);
    EXPECT_EQ(resp.body, "GET /n/" + std::to_string(i) + "|");
  }
  server.stop();
}

TEST(HttpServerClientTest, LargeBodyRoundTrip) {
  HttpServer server(0, echo_handler());
  server.start();
  HttpConnection conn("127.0.0.1", server.port());
  Request r;
  r.method = "POST";
  r.body = std::string(1 << 20, 'x');  // 1 MiB
  Response resp = conn.round_trip(r);
  EXPECT_EQ(resp.body.size(), r.body.size() + std::string("POST /|").size());
  server.stop();
}

TEST(HttpServerClientTest, HandlerExceptionBecomes500) {
  HttpServer server(0, [](const Request&) -> Response {
    throw std::runtime_error("kaboom");
  });
  server.start();
  HttpConnection conn("127.0.0.1", server.port());
  Response resp = conn.round_trip(Request{});
  EXPECT_EQ(resp.status, 500);
  EXPECT_NE(resp.body.find("kaboom"), std::string::npos);
  server.stop();
}

TEST(HttpServerClientTest, ConnectionCloseHonored) {
  HttpServer server(0, echo_handler());
  server.start();
  HttpConnection conn("127.0.0.1", server.port());
  Request r;
  r.headers.set("Connection", "close");
  Response resp = conn.round_trip(r);
  EXPECT_EQ(*resp.headers.get("Connection"), "close");
  // Client transparently reconnects for the next request.
  EXPECT_EQ(conn.round_trip(Request{}).status, 200);
  server.stop();
}

TEST(HttpServerClientTest, ConcurrentClients) {
  HttpServer server(0, echo_handler());
  server.start();
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 8; ++c) {
    clients.emplace_back([&, c] {
      HttpConnection conn("127.0.0.1", server.port());
      for (int i = 0; i < 25; ++i) {
        Request r;
        r.target = "/c" + std::to_string(c);
        if (conn.round_trip(r).status == 200) ok.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok.load(), 8 * 25);
  server.stop();
}

TEST(HttpServerClientTest, StopUnblocksIdleKeepAliveConnections) {
  // Regression test for the shutdown deadlock: a client holds an idle
  // keep-alive connection while the server stops.
  HttpServer server(0, echo_handler());
  server.start();
  HttpConnection conn("127.0.0.1", server.port());
  conn.round_trip(Request{});
  auto t0 = std::chrono::steady_clock::now();
  server.stop();  // must not wait for the client to disconnect
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(5));
}

TEST(HttpServerClientTest, ConnectToClosedPortThrows) {
  std::uint16_t dead_port;
  {
    HttpServer server(0, echo_handler());
    dead_port = server.port();
  }
  HttpConnection conn("127.0.0.1", dead_port);
  EXPECT_THROW(conn.round_trip(Request{}), TransportError);
}

TEST(HttpServerClientTest, StartStopIdempotent) {
  HttpServer server(0, echo_handler());
  server.start();
  server.start();
  server.stop();
  server.stop();
  SUCCEED();
}

TEST(HttpServerClientTest, AutoAssignedPortsAreDistinct) {
  HttpServer a(0, echo_handler());
  HttpServer b(0, echo_handler());
  EXPECT_NE(a.port(), 0);
  EXPECT_NE(a.port(), b.port());
}

}  // namespace
}  // namespace wsc::http
