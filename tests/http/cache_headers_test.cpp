#include "http/cache_headers.hpp"

#include <gtest/gtest.h>

namespace wsc::http {
namespace {

TEST(CacheControlTest, ParsesMaxAge) {
  CacheDirectives d = parse_cache_control("max-age=3600");
  EXPECT_TRUE(d.cacheable());
  ASSERT_TRUE(d.max_age.has_value());
  EXPECT_EQ(d.max_age->count(), 3600);
}

TEST(CacheControlTest, ParsesNoStoreNoCache) {
  EXPECT_FALSE(parse_cache_control("no-store").cacheable());
  EXPECT_FALSE(parse_cache_control("no-cache").cacheable());
  CacheDirectives d = parse_cache_control("no-store, no-cache");
  EXPECT_TRUE(d.no_store);
  EXPECT_TRUE(d.no_cache);
}

TEST(CacheControlTest, CaseAndWhitespaceInsensitive) {
  CacheDirectives d = parse_cache_control("  Max-Age=60 ,  NO-STORE ");
  EXPECT_TRUE(d.no_store);
  EXPECT_EQ(d.max_age->count(), 60);
}

TEST(CacheControlTest, UnknownDirectivesIgnored) {
  CacheDirectives d = parse_cache_control("public, s-maxage=10, immutable");
  EXPECT_TRUE(d.cacheable());
  EXPECT_FALSE(d.max_age.has_value());
}

TEST(CacheControlTest, MalformedMaxAgeIsConservative) {
  EXPECT_FALSE(parse_cache_control("max-age=soon").cacheable());
}

TEST(CacheControlTest, ResponseExtraction) {
  Response r;
  EXPECT_TRUE(cache_directives(r).cacheable());  // absent header
  r.headers.set("Cache-Control", "no-store");
  EXPECT_FALSE(cache_directives(r).cacheable());
}

TEST(CacheControlTest, FormatRoundTrips) {
  CacheDirectives d;
  d.max_age = std::chrono::seconds(120);
  CacheDirectives back = parse_cache_control(format_cache_control(d));
  EXPECT_EQ(back.max_age->count(), 120);
  EXPECT_TRUE(back.cacheable());

  CacheDirectives ns;
  ns.no_store = true;
  EXPECT_FALSE(parse_cache_control(format_cache_control(ns)).cacheable());

  EXPECT_EQ(format_cache_control(CacheDirectives{}), "public");
}

TEST(HttpDateTest, FormatsAndParses) {
  auto t = std::chrono::seconds(1'000'000'000);
  std::string s = format_http_date(t);
  EXPECT_NE(s.find("GMT"), std::string::npos);
  auto back = parse_http_date(s);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, t);
}

TEST(HttpDateTest, RoundTripsAcrossRange) {
  for (long long secs : {0LL, 59LL, 86'399LL, 86'400LL, 123'456'789LL}) {
    auto t = std::chrono::seconds(secs);
    EXPECT_EQ(parse_http_date(format_http_date(t)), t) << secs;
  }
}

TEST(HttpDateTest, RejectsGarbage) {
  EXPECT_FALSE(parse_http_date("yesterday").has_value());
  EXPECT_FALSE(parse_http_date("").has_value());
  EXPECT_FALSE(parse_http_date("Mon, 99 Zzz 2004 99:99:99 GMT").has_value());
}

}  // namespace
}  // namespace wsc::http
