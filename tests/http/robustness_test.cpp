// HTTP server robustness: hostile/garbage clients must not crash, hang or
// wedge the server; well-behaved clients keep working afterwards.
#include <gtest/gtest.h>

#include "http/client.hpp"
#include "http/server.hpp"
#include "http/socket.hpp"
#include <chrono>
#include <thread>

#include "util/error.hpp"
#include "util/random.hpp"

namespace wsc::http {
namespace {

Handler ok_handler() {
  return [](const Request&) {
    Response r;
    r.body = "ok";
    return r;
  };
}

void expect_still_serving(HttpServer& server) {
  HttpConnection conn("127.0.0.1", server.port());
  EXPECT_EQ(conn.round_trip(Request{}).body, "ok");
}

TEST(HttpRobustnessTest, GarbageBytesDropConnectionOnly) {
  HttpServer server(0, ok_handler());
  server.start();
  util::Rng rng(77);
  for (int i = 0; i < 20; ++i) {
    TcpStream s = TcpStream::connect("127.0.0.1", server.port());
    auto junk = rng.next_bytes(1 + rng.next_below(300));
    try {
      s.write_all(std::string_view(reinterpret_cast<const char*>(junk.data()),
                                   junk.size()));
    } catch (const TransportError&) {
      // server may already have dropped us mid-write; fine
    }
    s.close();
  }
  expect_still_serving(server);
  server.stop();
}

TEST(HttpRobustnessTest, ClientDisconnectMidRequest) {
  HttpServer server(0, ok_handler());
  server.start();
  {
    TcpStream s = TcpStream::connect("127.0.0.1", server.port());
    s.write_all("POST / HTTP/1.1\r\nContent-Length: 100000\r\n\r\npartial");
    // ...and vanish without the promised body.
  }
  expect_still_serving(server);
  server.stop();
}

TEST(HttpRobustnessTest, OversizedHeaderRejected) {
  HttpServer server(0, ok_handler());
  server.start();
  TcpStream s = TcpStream::connect("127.0.0.1", server.port());
  try {
    s.write_all("GET / HTTP/1.1\r\nX-Big: " + std::string(100'000, 'h'));
    // Server aborts the connection once the 64 KiB head cap is hit; our
    // remaining writes may fail with EPIPE/ECONNRESET.
    s.write_all(std::string(100'000, 'h'));
  } catch (const TransportError&) {
  }
  expect_still_serving(server);
  server.stop();
}

TEST(HttpRobustnessTest, PipelinedRequestsOnOneSocket) {
  HttpServer server(0, ok_handler());
  server.start();
  TcpStream s = TcpStream::connect("127.0.0.1", server.port());
  // Two complete requests in one write: the server must answer both.
  s.write_all("GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n");
  std::string received;
  char buf[4096];
  while (received.find("ok") == std::string::npos ||
         received.find("ok", received.find("ok") + 1) == std::string::npos) {
    std::size_t n = s.read_some(buf, sizeof(buf));
    ASSERT_GT(n, 0u) << "server closed before answering both requests";
    received.append(buf, n);
  }
  EXPECT_EQ(received.find("HTTP/1.1 200"), 0u);
  server.stop();
}

TEST(HttpRobustnessTest, SlowLorisSingleByteWrites) {
  HttpServer server(0, ok_handler());
  server.start();
  TcpStream s = TcpStream::connect("127.0.0.1", server.port());
  const std::string request = "GET / HTTP/1.1\r\nA: b\r\n\r\n";
  for (char c : request) s.write_all(std::string_view(&c, 1));
  char buf[1024];
  std::size_t n = s.read_some(buf, sizeof(buf));
  EXPECT_GT(n, 0u);
  EXPECT_EQ(std::string_view(buf, 12), "HTTP/1.1 200");
  server.stop();
}

TEST(HttpRobustnessTest, ManySequentialConnections) {
  HttpServer server(0, ok_handler());
  server.start();
  for (int i = 0; i < 100; ++i) {
    HttpConnection conn("127.0.0.1", server.port());
    EXPECT_EQ(conn.round_trip(Request{}).status, 200);
  }
  server.stop();
}

TEST(HttpRobustnessTest, StopWhileRequestsInFlight) {
  HttpServer server(0, [](const Request&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    Response r;
    r.body = "slow";
    return r;
  });
  server.start();
  std::thread client([&] {
    try {
      HttpConnection conn("127.0.0.1", server.port());
      for (int i = 0; i < 50; ++i) conn.round_trip(Request{});
    } catch (const wsc::Error&) {
      // the stop below may cut us off mid-flight
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server.stop();  // must return promptly despite the in-flight request
  client.join();
  SUCCEED();
}

}  // namespace
}  // namespace wsc::http
