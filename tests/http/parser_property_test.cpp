// Property sweeps on the HTTP parser: any serialized message must reparse
// identically regardless of how the byte stream is chunked, and hostile
// bytes must produce ParseError, never a crash.
#include <gtest/gtest.h>

#include "http/message.hpp"
#include "http/parser.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace wsc::http {
namespace {

Request random_request(util::Rng& rng) {
  Request r;
  const char* methods[] = {"GET", "POST", "PUT", "DELETE", "HEAD"};
  r.method = methods[rng.next_below(std::size(methods))];
  r.target = "/" + rng.next_word(1, 12) + "?" + rng.next_word(1, 5) + "=" +
             rng.next_word(0 + 1, 8);
  std::size_t headers = rng.next_below(6);
  for (std::size_t i = 0; i < headers; ++i) {
    // Index in the name keeps names unique (duplicate names are legal HTTP
    // but make the value comparison below ambiguous).
    r.headers.add("X-" + std::to_string(i) + "-" + rng.next_word(2, 10),
                  rng.next_sentence(1 + rng.next_below(3)));
  }
  if (rng.next_bool(0.6)) {
    auto bytes = rng.next_bytes(rng.next_below(5000));
    r.body.assign(bytes.begin(), bytes.end());
  }
  return r;
}

/// Feed `wire` to the parser in random-sized chunks.
void reparse_chunked(const std::string& wire, util::Rng& rng, Request* out) {
  RequestParser parser;
  std::size_t pos = 0;
  while (!parser.complete()) {
    ASSERT_LE(pos, wire.size()) << "parser never completed";
    std::size_t chunk = 1 + rng.next_below(97);
    chunk = std::min(chunk, wire.size() - pos);
    std::size_t used = parser.feed(std::string_view(wire).substr(pos, chunk));
    EXPECT_LE(used, chunk);
    pos += used;
    if (used == 0 && parser.complete()) break;
  }
  *out = parser.take();
}

class HttpParserProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HttpParserProperty, RoundTripsUnderArbitraryChunking) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 40; ++i) {
    Request original = random_request(rng);
    std::string wire = original.to_bytes();
    Request back;
    ASSERT_NO_FATAL_FAILURE(reparse_chunked(wire, rng, &back));
    EXPECT_EQ(back.method, original.method);
    EXPECT_EQ(back.target, original.target);
    EXPECT_EQ(back.body, original.body);
    for (const auto& [name, value] : original.headers.all())
      EXPECT_EQ(back.headers.get(name), std::optional<std::string_view>(value));
  }
}

TEST_P(HttpParserProperty, ResponsesRoundTripToo) {
  util::Rng rng(GetParam() ^ 0xAA);
  for (int i = 0; i < 40; ++i) {
    Response original;
    original.status = static_cast<int>(100 + rng.next_below(500));
    original.reason = rng.next_word(2, 12);
    original.headers.set("Content-Type", "text/" + rng.next_word(2, 6));
    auto bytes = rng.next_bytes(rng.next_below(2000));
    original.body.assign(bytes.begin(), bytes.end());

    ResponseParser parser;
    std::string wire = original.to_bytes();
    std::size_t pos = 0;
    while (!parser.complete()) {
      std::size_t chunk = std::min<std::size_t>(1 + rng.next_below(61),
                                                wire.size() - pos);
      pos += parser.feed(std::string_view(wire).substr(pos, chunk));
    }
    Response back = parser.take();
    EXPECT_EQ(back.status, original.status);
    EXPECT_EQ(back.reason, original.reason);
    EXPECT_EQ(back.body, original.body);
  }
}

TEST_P(HttpParserProperty, GarbageNeverCrashes) {
  util::Rng rng(GetParam() ^ 0x6A);
  for (int i = 0; i < 100; ++i) {
    auto junk = rng.next_bytes(rng.next_below(300));
    RequestParser parser;
    try {
      parser.feed(std::string_view(reinterpret_cast<const char*>(junk.data()),
                                   junk.size()));
      // Push more to flush head buffering paths.
      parser.feed("\r\n\r\n");
    } catch (const ParseError&) {
      // structured rejection is the success criterion
    }
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, HttpParserProperty,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace wsc::http
