// Server lifecycle: worker-handle reaping (the ISSUE-9 thread leak),
// reactor idle-timeout reaping, and clean stop() with parked keep-alive
// connections.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "http/client.hpp"
#include "http/server.hpp"
#include "http/socket.hpp"
#include "util/error.hpp"

namespace wsc::http {
namespace {

Handler ok_handler() {
  return [](const Request&) {
    Response r;
    r.body = "ok";
    return r;
  };
}

std::uint64_t live_threads() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return 0;
  char line[256];
  std::uint64_t threads = 0;
  while (std::fgets(line, sizeof(line), f)) {
    if (std::strncmp(line, "Threads:", 8) == 0) {
      threads = std::strtoull(line + 8, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return threads;
}

// Regression (ISSUE 9): the threaded server accumulated one finished
// std::thread handle per connection ever served, joined only at stop() —
// a long-running server leaked a handle (and, until the OS thread parked,
// a thread) per connection.  With reaping, serving many sequential
// connections must not grow the process thread count.
TEST(ServerLifecycleTest, SequentialConnectionsDoNotAccumulateThreads) {
  HttpServer server(0, ok_handler());
  server.start();
  constexpr int kConnections = 800;
  std::uint64_t peak = 0;
  for (int i = 0; i < kConnections; ++i) {
    HttpConnection conn("127.0.0.1", server.port());
    Request r;
    r.headers.set("Connection", "close");
    EXPECT_EQ(conn.round_trip(r).body, "ok");
    if (i % 50 == 49) peak = std::max(peak, live_threads());
  }
  // Handles must have been joined as we went, not parked until stop().
  EXPECT_GE(server.stats().workers_reaped.load(), kConnections / 2u)
      << "finished workers are not being reaped";
  // Thread count stays flat: baseline (main + acceptor + gtest internals)
  // plus at most a handful of not-yet-reaped workers — nowhere near the
  // one-thread-per-past-connection of the leak.
  EXPECT_LT(peak, 64u) << "thread count grew with connection count";
  server.stop();
  EXPECT_EQ(server.stats().connections_active.load(), 0u);
}

TEST(ServerLifecycleTest, ReactorReapsIdleConnections) {
  ServerOptions options;
  options.mode = ServerOptions::Mode::Reactor;
  options.idle_timeout = std::chrono::milliseconds(150);
  HttpServer server(0, ok_handler(), options);
  server.start();
  TcpStream s = TcpStream::connect("127.0.0.1", server.port());
  s.write_all("GET / HTTP/1.1\r\nHost: x\r\n\r\n");
  s.set_read_timeout(std::chrono::milliseconds(5'000));
  char buf[4096];
  ASSERT_GT(s.read_some(buf, sizeof(buf)), 0u);
  // Idle past the timeout: the server must close from its side.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  std::size_t n = 1;
  while (n != 0 && std::chrono::steady_clock::now() < deadline)
    n = s.read_some(buf, sizeof(buf));
  EXPECT_EQ(n, 0u) << "idle connection was not reaped";
  EXPECT_GE(server.stats().idle_reaped.load(), 1u);
  server.stop();
}

TEST(ServerLifecycleTest, ReactorStopsCleanlyWithParkedKeepAliveConns) {
  ServerOptions options;
  options.mode = ServerOptions::Mode::Reactor;
  HttpServer server(0, ok_handler(), options);
  server.start();
  // Park a crowd of keep-alive connections, each having completed one
  // request (so they sit in the idle list, not mid-parse).
  std::vector<TcpStream> parked;
  constexpr int kParked = 200;
  for (int i = 0; i < kParked; ++i) {
    TcpStream s = TcpStream::connect("127.0.0.1", server.port());
    s.write_all("GET / HTTP/1.1\r\nHost: x\r\n\r\n");
    s.set_read_timeout(std::chrono::milliseconds(5'000));
    char buf[4096];
    ASSERT_GT(s.read_some(buf, sizeof(buf)), 0u);
    parked.push_back(std::move(s));
  }
  EXPECT_EQ(server.stats().connections_active.load(),
            static_cast<std::uint64_t>(kParked));
  const auto t0 = std::chrono::steady_clock::now();
  server.stop();
  const auto took = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(took, std::chrono::seconds(5)) << "stop() hung on parked conns";
  EXPECT_EQ(server.stats().connections_active.load(), 0u);
}

TEST(ServerLifecycleTest, ThreadedStopsCleanlyWithParkedKeepAliveConns) {
  HttpServer server(0, ok_handler());
  server.start();
  std::vector<std::unique_ptr<HttpConnection>> parked;
  for (int i = 0; i < 32; ++i) {
    auto conn =
        std::make_unique<HttpConnection>("127.0.0.1", server.port());
    EXPECT_EQ(conn->round_trip(Request{}).body, "ok");
    parked.push_back(std::move(conn));
  }
  const auto t0 = std::chrono::steady_clock::now();
  server.stop();
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(5));
  EXPECT_EQ(server.stats().connections_active.load(), 0u);
}

TEST(ServerLifecycleTest, DoubleStopIsIdempotent) {
  ServerOptions options;
  options.mode = ServerOptions::Mode::Reactor;
  HttpServer server(0, ok_handler(), options);
  server.start();
  server.stop();
  server.stop();  // second stop is a no-op, not a crash
}

}  // namespace
}  // namespace wsc::http
