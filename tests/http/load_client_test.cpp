// The epoll load engine (src/http/load_client) against a live server:
// closed- and open-loop disciplines, keep-alive reuse, error accounting.
#include <gtest/gtest.h>

#include <chrono>

#include "http/load_client.hpp"
#include "http/server.hpp"

namespace wsc::http {
namespace {

Handler ok_handler() {
  return [](const Request&) {
    Response r;
    r.headers.set("Content-Type", "text/plain");
    r.body = "payload";
    return r;
  };
}

ServerOptions reactor_options() {
  ServerOptions o;
  o.mode = ServerOptions::Mode::Reactor;
  return o;
}

TEST(LoadClientTest, ClosedLoopDrivesAllConnections) {
  HttpServer server(0, ok_handler(), reactor_options());
  server.start();
  LoadOptions load;
  load.port = server.port();
  load.connections = 8;
  load.warmup = std::chrono::milliseconds(100);
  load.duration = std::chrono::milliseconds(400);
  LoadReport report = run_load(load);
  EXPECT_EQ(report.connected, 8u);
  EXPECT_EQ(report.errors, 0u);
  EXPECT_GT(report.requests, 8u);  // keep-alive reuse: many per connection
  EXPECT_GT(report.rps, 0.0);
  EXPECT_GT(report.p99_us, 0.0);
  EXPECT_GE(report.p99_us, report.p50_us);
  server.stop();
  // The whole configured population shows up server-side too.
  EXPECT_GE(server.stats().connections_accepted.load(), 8u);
  EXPECT_GE(server.stats().requests.load(), report.requests);
}

TEST(LoadClientTest, OpenLoopHonorsTheSchedule) {
  HttpServer server(0, ok_handler(), reactor_options());
  server.start();
  LoadOptions load;
  load.port = server.port();
  load.connections = 4;
  load.open_rps = 500;
  load.warmup = std::chrono::milliseconds(100);
  load.duration = std::chrono::milliseconds(600);
  LoadReport report = run_load(load);
  EXPECT_EQ(report.errors, 0u);
  // ~500 rps over the ~0.6s measured window: roughly 300 requests, far
  // below what closed-loop would push (tens of thousands) — i.e. the
  // schedule, not the server, set the pace.  Generous bounds for CI.
  EXPECT_GT(report.requests, 100u);
  EXPECT_LT(report.requests, 900u);
  server.stop();
}

TEST(LoadClientTest, AgainstThreadedServerToo) {
  HttpServer server(0, ok_handler());  // threaded mode default
  server.start();
  LoadOptions load;
  load.port = server.port();
  load.connections = 4;
  load.warmup = std::chrono::milliseconds(50);
  load.duration = std::chrono::milliseconds(300);
  LoadReport report = run_load(load);
  EXPECT_EQ(report.connected, 4u);
  EXPECT_EQ(report.errors, 0u);
  EXPECT_GT(report.requests, 4u);
  server.stop();
}

TEST(LoadClientTest, UnreachableServerThrows) {
  LoadOptions load;
  load.port = 1;  // nothing listens on port 1
  load.connections = 2;
  load.warmup = std::chrono::milliseconds(0);
  load.duration = std::chrono::milliseconds(30'000);  // must not wait this out
  EXPECT_THROW(run_load(load), Error);
}

}  // namespace
}  // namespace wsc::http
