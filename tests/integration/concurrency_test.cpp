// Concurrency: many client threads hammering one shared cache through the
// full middleware, with every representation (the Figure-4 stress shape).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/client.hpp"
#include "reflect/algorithms.hpp"
#include "services/google/service.hpp"
#include "services/google/stub.hpp"
#include "transport/inproc_transport.hpp"

namespace wsc {
namespace {

using reflect::Object;
using services::google::GoogleBackend;
using services::google::GoogleClient;
using services::google::GoogleSearchResult;

constexpr const char* kEndpoint = "inproc://google/api";

class ConcurrencyRepresentations
    : public ::testing::TestWithParam<cache::Representation> {};

TEST_P(ConcurrencyRepresentations, ParallelHitsAreConsistent) {
  auto backend = std::make_shared<GoogleBackend>();
  auto transport = std::make_shared<transport::InProcessTransport>();
  transport->bind(kEndpoint, services::google::make_google_service(backend));

  cache::CachingServiceClient::Options options;
  options.policy = services::google::default_google_policy(GetParam());
  auto cache_ptr = std::make_shared<cache::ResponseCache>();
  GoogleClient client(transport, kEndpoint, cache_ptr, options);

  // Warm one entry, then hit it from many threads while other threads
  // create fresh entries.
  GoogleSearchResult expected = client.doGoogleSearch("hot");
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      // Thread-local stub sharing the transport and cache.
      cache::CachingServiceClient::Options o;
      o.policy = services::google::default_google_policy(GetParam());
      GoogleClient local(transport, kEndpoint, cache_ptr, o);
      for (int i = 0; i < 30; ++i) {
        GoogleSearchResult hot = local.doGoogleSearch("hot");
        if (!(hot == expected)) failures.fetch_add(1);
        if (i % 5 == t % 5) {
          local.doGoogleSearch("cold-" + std::to_string(t) + "-" + std::to_string(i));
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(cache_ptr->stats().hits, 8u * 30u - 10u);
}

INSTANTIATE_TEST_SUITE_P(
    Representations, ConcurrencyRepresentations,
    ::testing::Values(cache::Representation::XmlMessage,
                      cache::Representation::SaxEvents,
                      cache::Representation::Serialized,
                      cache::Representation::ReflectionCopy,
                      cache::Representation::CloneCopy,
                      cache::Representation::Auto));

TEST(ConcurrencyTest, MutationsUnderConcurrencyDoNotPoison) {
  // Copying representations: threads aggressively mutate their returned
  // objects; every later retrieval must still match the original.
  auto backend = std::make_shared<GoogleBackend>();
  auto transport = std::make_shared<transport::InProcessTransport>();
  transport->bind(kEndpoint, services::google::make_google_service(backend));

  cache::CachingServiceClient::Options options;
  options.policy = services::google::default_google_policy(
      cache::Representation::ReflectionCopy);
  auto cache_ptr = std::make_shared<cache::ResponseCache>();
  GoogleClient client(transport, kEndpoint, cache_ptr, options);

  GoogleSearchResult expected = client.doGoogleSearch("target");
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      cache::CachingServiceClient::Options o;
      o.policy = services::google::default_google_policy(
          cache::Representation::ReflectionCopy);
      GoogleClient local(transport, kEndpoint, cache_ptr, o);
      for (int i = 0; i < 50; ++i) {
        GoogleSearchResult r = local.doGoogleSearch("target");
        if (!(r == expected)) failures.fetch_add(1);
        // Trash the returned copy.
        r.resultElements.clear();
        r.searchQuery = "garbage";
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ConcurrencyTest, EvictionChurnUnderParallelLoad) {
  auto backend = std::make_shared<GoogleBackend>();
  auto transport = std::make_shared<transport::InProcessTransport>();
  transport->bind(kEndpoint, services::google::make_google_service(backend));

  cache::ResponseCache::Config small;
  small.max_entries = 8;  // force constant eviction
  auto cache_ptr = std::make_shared<cache::ResponseCache>(small);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      cache::CachingServiceClient::Options o;
      o.policy = services::google::default_google_policy();
      GoogleClient local(transport, kEndpoint, cache_ptr, o);
      for (int i = 0; i < 60; ++i) {
        std::string q = "q" + std::to_string((t + i) % 24);
        GoogleSearchResult r = local.doGoogleSearch(q);
        if (r.searchQuery != q) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_LE(cache_ptr->entry_count(), 8u);
  EXPECT_GT(cache_ptr->stats().evictions, 0u);
}

}  // namespace
}  // namespace wsc
