// Full-stack integration: portal pages and Google operations over REAL
// loopback HTTP (client middleware -> HttpTransport -> HttpServer -> SOAP
// dispatcher -> dummy backend), the complete Figure-2 topology.
#include <gtest/gtest.h>

#include <atomic>

#include "http/client.hpp"
#include "http/server.hpp"
#include "portal/load_sim.hpp"
#include "portal/portal.hpp"
#include "services/google/service.hpp"
#include "services/google/stub.hpp"
#include "transport/http_transport.hpp"
#include "transport/soap_http.hpp"
#include "wsdl/wsdl_writer.hpp"

namespace wsc {
namespace {

using services::google::GoogleBackend;
using services::google::GoogleClient;
using services::google::GoogleSearchResult;

struct FullStack {
  FullStack() {
    backend = std::make_shared<GoogleBackend>();
    soap_server = transport::serve_soap(
        0, "/soap/google", services::google::make_google_service(backend));
    endpoint = soap_server->base_url() + "/soap/google";
  }

  ~FullStack() { soap_server->stop(); }

  GoogleClient make_google_client(
      cache::Representation rep = cache::Representation::Auto) {
    cache::CachingServiceClient::Options options;
    options.policy = services::google::default_google_policy(rep);
    return GoogleClient(std::make_shared<transport::HttpTransport>(), endpoint,
                        std::make_shared<cache::ResponseCache>(), options);
  }

  std::shared_ptr<GoogleBackend> backend;
  std::unique_ptr<http::HttpServer> soap_server;
  std::string endpoint;
};

TEST(EndToEndTest, AllThreeGoogleOperationsOverHttp) {
  FullStack stack;
  GoogleClient client = stack.make_google_client();
  EXPECT_EQ(client.doSpellingSuggestion("caching rocks"), "Caching Rocks");
  EXPECT_EQ(client.doGetCachedPage("http://x").size(), 3600u);
  GoogleSearchResult r = client.doGoogleSearch("icdcs 2004");
  EXPECT_EQ(r.resultElements.size(), 10u);
}

TEST(EndToEndTest, CacheHitsSkipTheNetwork) {
  FullStack stack;
  GoogleClient client = stack.make_google_client();
  client.doGoogleSearch("same");
  // Stop the server: hits must still be served, misses must fail.
  stack.soap_server->stop();
  GoogleSearchResult hit = client.doGoogleSearch("same");
  EXPECT_EQ(hit.searchQuery, "same");
  EXPECT_THROW(client.doGoogleSearch("different"), TransportError);
}

TEST(EndToEndTest, SoapFaultOverHttp) {
  FullStack stack;
  GoogleClient client = stack.make_google_client();
  // Unknown endpoint path -> 404 -> HttpError (transport level).
  cache::CachingServiceClient::Options options;
  options.policy = services::google::default_google_policy();
  GoogleClient bad_path(std::make_shared<transport::HttpTransport>(),
                        stack.soap_server->base_url() + "/nope",
                        std::make_shared<cache::ResponseCache>(), options);
  EXPECT_THROW(bad_path.doSpellingSuggestion("x"), HttpError);
}

TEST(EndToEndTest, WsdlServedContractMatchesRuntime) {
  // The WSDL document renders from the same description the stub uses.
  std::string wsdl_doc = wsdl::to_wsdl_xml(
      *services::google::google_description(), "http://example/soap");
  for (const char* op :
       {"doSpellingSuggestion", "doGetCachedPage", "doGoogleSearch"})
    EXPECT_NE(wsdl_doc.find(op), std::string::npos) << op;
}

TEST(EndToEndTest, PortalOverRealHttpWithLoadSimulator) {
  FullStack stack;
  portal::PortalConfig config;
  config.backend_endpoint = stack.endpoint;
  config.transport = std::make_shared<transport::HttpTransport>();
  config.options.policy = services::google::default_google_policy();
  portal::PortalSite site(std::move(config));
  http::HttpServer portal_server(0, site.handler());
  portal_server.start();

  portal::LoadConfig load;
  load.concurrency = 2;
  load.requests_per_client = 20;
  load.hit_ratio = 0.5;
  load.hot_set_size = 4;
  portal::LoadReport report =
      portal::run_load_http(portal_server.base_url(), load);

  EXPECT_EQ(report.requests, 40u);
  EXPECT_GT(report.throughput_rps, 0.0);
  // ~50% of measured requests hit (warmup seeded the hot set).
  auto stats = site.response_cache().stats();
  EXPECT_GT(stats.hits, 15u);
  EXPECT_GT(stats.misses, 15u);
  portal_server.stop();
}

TEST(EndToEndTest, CacheControlFlowsFromServerToClientPolicy) {
  // Server advertises no-store for doGoogleSearch: the client must not
  // cache it even though the administrator marked it cacheable.
  auto backend = std::make_shared<GoogleBackend>();
  std::map<std::string, http::CacheDirectives> advertised;
  advertised["doGoogleSearch"].no_store = true;
  auto server = transport::serve_soap(
      0, "/soap", services::google::make_google_service(backend), advertised);

  cache::CachingServiceClient::Options options;
  options.policy = services::google::default_google_policy();
  auto cache_ptr = std::make_shared<cache::ResponseCache>();
  GoogleClient client(std::make_shared<transport::HttpTransport>(),
                      server->base_url() + "/soap", cache_ptr, options);
  client.doGoogleSearch("q");
  client.doGoogleSearch("q");
  EXPECT_EQ(cache_ptr->stats().hits, 0u);
  EXPECT_EQ(cache_ptr->entry_count(), 0u);
  // Spelling is unaffected.
  client.doSpellingSuggestion("a");
  client.doSpellingSuggestion("a");
  EXPECT_EQ(cache_ptr->stats().hits, 1u);
  server->stop();
}

TEST(EndToEndTest, MultirefServerWithEveryCacheRepresentation) {
  // An Axis-style multiref backend (the real Google wire format) behind
  // the full middleware: every representation must produce equal results
  // on hits, including the XML/SAX forms that store the multiref document.
  auto backend = std::make_shared<GoogleBackend>();
  auto service = services::google::make_google_service(backend);
  service->set_multiref_responses(true);
  auto server = transport::serve_soap(0, "/soap", service);

  for (cache::Representation rep :
       {cache::Representation::XmlMessage, cache::Representation::SaxEvents,
        cache::Representation::SaxEventsCompact,
        cache::Representation::Serialized, cache::Representation::ReflectionCopy,
        cache::Representation::CloneCopy, cache::Representation::Auto}) {
    cache::CachingServiceClient::Options options;
    options.policy = services::google::default_google_policy(rep);
    GoogleClient client(std::make_shared<transport::HttpTransport>(),
                        server->base_url() + "/soap",
                        std::make_shared<cache::ResponseCache>(), options);
    GoogleSearchResult miss = client.doGoogleSearch("multiref query");
    GoogleSearchResult hit = client.doGoogleSearch("multiref query");
    EXPECT_EQ(miss, hit) << cache::representation_name(rep);
    EXPECT_EQ(miss.resultElements.size(), 10u);
  }
  server->stop();
}

TEST(EndToEndTest, RevalidationOverRealHttp) {
  // Server publishes Last-Modified; an expired client entry is renewed by
  // a real 304 over the wire instead of a full SOAP response.
  auto backend = std::make_shared<GoogleBackend>();
  std::atomic<long> last_modified{700};
  auto server = transport::serve_soap(
      0, "/soap", services::google::make_google_service(backend), {},
      [&last_modified](const std::string&) {
        return std::optional<std::chrono::seconds>(
            std::chrono::seconds(last_modified.load()));
      });

  auto clock = std::make_shared<util::ManualClock>();
  cache::CachingServiceClient::Options options;
  cache::OperationPolicy p;
  p.cacheable = true;
  p.ttl = std::chrono::milliseconds(50);
  p.revalidate = true;
  options.policy.set("doGoogleSearch", p);
  auto cache_ptr = std::make_shared<cache::ResponseCache>(
      cache::ResponseCache::Config{}, *clock);
  GoogleClient client(std::make_shared<transport::HttpTransport>(),
                      server->base_url() + "/soap", cache_ptr, options);

  GoogleSearchResult first = client.doGoogleSearch("reval");
  clock->advance(std::chrono::seconds(1));  // expire the entry

  GoogleSearchResult renewed = client.doGoogleSearch("reval");
  EXPECT_EQ(renewed, first);
  EXPECT_EQ(cache_ptr->stats().revalidations, 1u);
  EXPECT_EQ(cache_ptr->stats().stores, 1u);  // no re-store after the 304

  // Now the resource changes: the conditional request misses.
  backend->set_version(9);
  last_modified = 9000;
  clock->advance(std::chrono::seconds(1));
  GoogleSearchResult changed = client.doGoogleSearch("reval");
  EXPECT_NE(changed, first);
  EXPECT_EQ(cache_ptr->stats().stores, 2u);
  server->stop();
}

}  // namespace
}  // namespace wsc
