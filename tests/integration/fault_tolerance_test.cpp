// End-to-end fault tolerance over the full stack (ISSUE 3 acceptance):
//   GoogleClient -> CachingServiceClient -> RetryingTransport ->
//   FaultInjectingTransport -> InProcessTransport -> GoogleBackend
//
// (a) a deterministic fault schedule of transient faults is absorbed by
//     the retry layer with zero application-visible errors,
// (b) with the origin hard-down and a warm-but-expired cache, operations
//     with a stale-if-error grace keep answering correctly (stale serves
//     counted), across every representation applicable to the result type,
// (c) once the breaker opens, failing fast is >= 10x cheaper in wall-clock
//     time than the configured per-call deadline.
//
// Every fault schedule is seeded; failures print the seed via SCOPED_TRACE
// so the exact run reproduces.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "core/client.hpp"
#include "core/representation.hpp"
#include "services/google/service.hpp"
#include "services/google/stub.hpp"
#include "transport/fault_injection.hpp"
#include "transport/inproc_transport.hpp"
#include "transport/retry.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"

namespace wsc {
namespace {

using cache::CachePolicy;
using cache::Representation;
using cache::StatsSnapshot;
using services::google::default_google_policy;
using services::google::GoogleBackend;
using services::google::GoogleClient;
using services::google::make_google_service;
using std::chrono::milliseconds;
using transport::FaultInjectingTransport;
using transport::FaultSpec;
using transport::RetryingTransport;
using transport::RetryPolicy;

constexpr const char* kEndpoint = "inproc://google/api";

/// The whole client pipeline over an in-process origin, in virtual time:
/// backoff sleeps advance the shared ManualClock, so deadlines and TTLs
/// interact exactly as they would on a wall clock, instantly.
struct Stack {
  Stack(FaultSpec spec, RetryPolicy retry_policy, CachePolicy policy) {
    backend = std::make_shared<GoogleBackend>();
    auto origin = std::make_shared<transport::InProcessTransport>();
    origin->bind(kEndpoint, make_google_service(backend));
    faults = std::make_shared<FaultInjectingTransport>(origin, spec);

    RetryingTransport::Deps deps;
    deps.clock = &clock;
    deps.jitter_seed = spec.seed;
    deps.sleeper = [this](milliseconds d) { clock.advance(d); };
    retrying = std::make_shared<RetryingTransport>(faults, retry_policy, deps);

    response_cache = std::make_shared<cache::ResponseCache>(
        cache::ResponseCache::Config{}, clock);
    cache::bind_transport_stats(*retrying, response_cache);

    cache::CachingServiceClient::Options options;
    options.policy = std::move(policy);
    client = std::make_unique<GoogleClient>(retrying, kEndpoint,
                                            response_cache, options);
  }

  StatsSnapshot stats() const { return response_cache->stats(); }

  util::ManualClock clock;
  std::shared_ptr<GoogleBackend> backend;
  std::shared_ptr<FaultInjectingTransport> faults;
  std::shared_ptr<RetryingTransport> retrying;
  std::shared_ptr<cache::ResponseCache> response_cache;
  std::unique_ptr<GoogleClient> client;
};

RetryPolicy absorbing_retry_policy() {
  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.base_backoff = milliseconds(5);
  policy.max_backoff = milliseconds(100);
  policy.budget_initial = 1000.0;
  policy.budget_earn = 1.0;
  policy.budget_cap = 1000.0;
  policy.breaker_threshold = 1000;  // keep the breaker out of test (a)
  return policy;
}

// (a) Transient faults — refusals, stalls, truncations — on a third of all
// calls, absorbed invisibly: every response correct, zero errors surface.
TEST(FaultToleranceTest, TransientFaultScheduleAbsorbedInvisibly) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
    SCOPED_TRACE("fault seed = " + std::to_string(seed));
    FaultSpec spec;
    spec.seed = seed;
    spec.p_connect_refused = 0.12;
    spec.p_read_stall = 0.08;
    spec.p_truncate_body = 0.10;
    Stack stack(spec, absorbing_retry_policy(),
                default_google_policy(Representation::Auto));

    int errors = 0;
    for (int i = 0; i < 200; ++i) {
      std::string phrase = "phrase-" + std::to_string(i);
      try {
        EXPECT_EQ(stack.client->doSpellingSuggestion(phrase),
                  stack.backend->spelling_suggestion(phrase));
      } catch (const Error& e) {
        ADD_FAILURE() << "call " << i << " surfaced: " << e.what();
        ++errors;
      }
    }
    EXPECT_EQ(errors, 0);
    StatsSnapshot stats = stack.stats();
    EXPECT_GT(stats.transport_retries, 0u);  // faults did fire underneath
    FaultInjectingTransport::Counters faults = stack.faults->counters();
    EXPECT_GT(faults.refused + faults.stalled + faults.truncated, 0u);
  }
}

// (b) Hard outage + warm-but-expired cache: operations with a grace keep
// serving the last good value, for every representation the result type
// admits.
TEST(FaultToleranceTest, OutageServesStaleAcrossRepresentations) {
  const auto& result_type = reflect::type_of<std::string>();
  const std::vector<Representation> all = {
      Representation::XmlMessage,    Representation::SaxEvents,
      Representation::SaxEventsCompact, Representation::Serialized,
      Representation::ReflectionCopy,   Representation::CloneCopy,
      Representation::Reference};

  int covered = 0;
  for (Representation rep : all) {
    if (!cache::applicable(rep, result_type, /*read_only=*/false)) continue;
    ++covered;
    SCOPED_TRACE(std::string("representation = ") +
                 std::string(cache::representation_name(rep)));

    CachePolicy policy = default_google_policy(rep, milliseconds(100));
    policy.stale_if_error("doSpellingSuggestion", std::chrono::minutes(5));
    Stack stack(FaultSpec{}, absorbing_retry_policy(), std::move(policy));

    std::string warm = stack.client->doSpellingSuggestion("helo wrold");
    stack.clock.advance(milliseconds(200));  // past TTL, inside grace
    stack.faults->set_down(true);

    EXPECT_EQ(stack.client->doSpellingSuggestion("helo wrold"), warm);
    EXPECT_EQ(stack.client->doSpellingSuggestion("helo wrold"), warm);
    StatsSnapshot stats = stack.stats();
    EXPECT_EQ(stats.stale_serves, 2u);
    EXPECT_GT(stats.transport_retries, 0u);  // it did try the wire first
  }
  // A string result admits at least the four universal representations.
  EXPECT_GE(covered, 4);
}

// Without a grace, the same outage surfaces the transport failure —
// degraded mode is opt-in per operation.
TEST(FaultToleranceTest, OutageWithoutGraceSurfacesTheFailure) {
  Stack stack(FaultSpec{}, absorbing_retry_policy(),
              default_google_policy(Representation::Auto, milliseconds(100)));
  stack.client->doSpellingSuggestion("helo wrold");
  stack.clock.advance(milliseconds(200));
  stack.faults->set_down(true);
  EXPECT_THROW(stack.client->doSpellingSuggestion("helo wrold"),
               TransportError);
  EXPECT_EQ(stack.stats().stale_serves, 0u);
}

// (c) Breaker open => failing fast costs real wall-clock microseconds, at
// least 10x below the per-call deadline budget.
TEST(FaultToleranceTest, BreakerFastFailBeatsDeadlineTenfold) {
  const milliseconds deadline(500);
  RetryPolicy retry_policy;
  retry_policy.max_attempts = 2;
  retry_policy.base_backoff = milliseconds(1);
  retry_policy.max_backoff = milliseconds(2);
  retry_policy.deadline = deadline;
  retry_policy.breaker_threshold = 2;
  retry_policy.breaker_cooldown = std::chrono::seconds(60);
  CachePolicy policy =
      default_google_policy(Representation::Auto, milliseconds(100));
  policy.stale_if_error("doSpellingSuggestion", std::chrono::minutes(5));
  Stack stack(FaultSpec{}, retry_policy, std::move(policy));

  std::string warm = stack.client->doSpellingSuggestion("helo wrold");
  stack.clock.advance(milliseconds(200));  // past TTL, inside grace
  stack.faults->set_down(true);

  // Trip the breaker (threshold=2 consecutive failures, each retried once).
  stack.client->doSpellingSuggestion("helo wrold");  // stale-served
  EXPECT_EQ(stack.retrying->breaker_state(util::Uri::parse(kEndpoint)),
            RetryingTransport::BreakerState::Open);
  std::uint64_t wire_calls = stack.faults->counters().calls;

  // While open: still answering (stale), but without touching the wire —
  // and fast.  Wall-clock bound measured with the real clock; the virtual
  // clock is frozen, so only breaker bookkeeping runs.
  auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(stack.client->doSpellingSuggestion("helo wrold"), warm);
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(stack.faults->counters().calls, wire_calls);
  EXPECT_LT(elapsed, deadline / 10);

  StatsSnapshot stats = stack.stats();
  EXPECT_GT(stats.breaker_opens, 0u);
  EXPECT_GT(stats.stale_serves, 0u);
}

// Breaker recovery: after the cooldown a single probe closes the breaker
// and traffic returns to the (recovered) origin.
TEST(FaultToleranceTest, BreakerRecoversThroughHalfOpenProbe) {
  RetryPolicy retry_policy;
  retry_policy.max_attempts = 1;
  retry_policy.breaker_threshold = 2;
  retry_policy.breaker_cooldown = std::chrono::seconds(2);
  Stack stack(FaultSpec{}, retry_policy,
              default_google_policy(Representation::Auto, milliseconds(100)));

  stack.faults->set_down(true);
  for (int i = 0; i < 2; ++i) {
    EXPECT_THROW(stack.client->doSpellingSuggestion("helo wrold"),
                 TransportError);
  }
  const util::Uri endpoint = util::Uri::parse(kEndpoint);
  EXPECT_EQ(stack.retrying->breaker_state(endpoint),
            RetryingTransport::BreakerState::Open);
  EXPECT_THROW(stack.client->doSpellingSuggestion("helo wrold"),
               BreakerOpenError);

  stack.clock.advance(std::chrono::seconds(3));  // cooldown elapses
  stack.faults->set_down(false);                 // origin recovered
  EXPECT_EQ(stack.client->doSpellingSuggestion("helo wrold"),
            stack.backend->spelling_suggestion("helo wrold"));
  EXPECT_EQ(stack.retrying->breaker_state(endpoint),
            RetryingTransport::BreakerState::Closed);
  StatsSnapshot stats = stack.stats();
  EXPECT_GT(stats.breaker_opens, 0u);
  EXPECT_GT(stats.breaker_probes, 0u);
}

// Per-call deadline: a persistently failing origin cannot hold a caller
// past the deadline budget; the hit is visible in the shared stats.
TEST(FaultToleranceTest, DeadlineBoundsACallAgainstADeadOrigin) {
  RetryPolicy retry_policy = absorbing_retry_policy();
  retry_policy.max_attempts = 1000;
  retry_policy.base_backoff = milliseconds(40);
  retry_policy.max_backoff = milliseconds(40);
  retry_policy.deadline = milliseconds(200);
  Stack stack(FaultSpec{}, retry_policy,
              default_google_policy(Representation::Auto));

  stack.faults->set_down(true);
  util::TimePoint before = stack.clock.now();
  EXPECT_THROW(stack.client->doSpellingSuggestion("helo wrold"),
               TimeoutError);
  // Virtual time spent is the deadline, give or take one backoff slice.
  EXPECT_LE(stack.clock.now() - before, milliseconds(240));
  EXPECT_EQ(stack.stats().deadline_hits, 1u);
}

}  // namespace
}  // namespace wsc
