// Axis 1.1 multiRef encoding: serializer emission and decoder resolution
// of href="#id" reference graphs — the on-wire shape real Google Web API
// responses had, proving the cache middleware handles both forms.
#include <gtest/gtest.h>

#include "reflect/algorithms.hpp"
#include "soap/deserializer.hpp"
#include "soap/dispatcher.hpp"
#include "soap/serializer.hpp"
#include "tests/soap/test_service.hpp"
#include "util/error.hpp"
#include "xml/dom.hpp"
#include "xml/event_sequence.hpp"
#include "xml/sax_parser.hpp"

namespace wsc::soap {
namespace {

using reflect::Object;
using reflect::testing::sample_polygon;
using wsc::soap::testing::make_test_service;
using wsc::soap::testing::Polygon;
using wsc::soap::testing::test_description;

const wsdl::OperationInfo& op(const char* name) {
  return test_description()->require_operation(name);
}

Object polygon_object() {
  reflect::testing::ensure_test_types();
  return Object::make(sample_polygon());
}

TEST(MultirefSerializerTest, WrapperUsesHrefSite) {
  Object result = polygon_object();
  std::string doc =
      serialize_response_multiref(op("echoPolygon"), "urn:Test", result);
  xml::Document parsed = xml::parse_document(doc);
  const xml::Node* wrapper =
      parsed.root->child("Body")->child("echoPolygonResponse");
  ASSERT_NE(wrapper, nullptr);
  const xml::Node* site = wrapper->child("return");
  ASSERT_NE(site, nullptr);
  EXPECT_EQ(site->attribute("href"), "#id0");
  EXPECT_TRUE(site->children().empty());
  // multiRef elements are siblings of the wrapper inside the Body.
  EXPECT_FALSE(parsed.root->child("Body")->children_named("multiRef").empty());
}

TEST(MultirefSerializerTest, PrimitiveResultsStayInline) {
  std::string doc = serialize_response_multiref(
      op("echoString"), "urn:Test", Object::make(std::string("inline!")));
  EXPECT_EQ(doc.find("multiRef"), std::string::npos);
  EXPECT_EQ(doc.find("href"), std::string::npos);
  EXPECT_NE(doc.find("inline!"), std::string::npos);
}

TEST(MultirefSerializerTest, BytesStayInline) {
  std::string doc = serialize_response_multiref(
      op("getBytes"), "urn:Test",
      Object::make(std::vector<std::uint8_t>{'f', 'o', 'o'}));
  EXPECT_EQ(doc.find("multiRef"), std::string::npos);
  EXPECT_NE(doc.find("Zm9v"), std::string::npos);
}

TEST(MultirefSerializerTest, NestedStructsGetOwnIds) {
  // Polygon -> points array -> Point structs: three levels of indirection.
  std::string doc = serialize_response_multiref(op("echoPolygon"), "urn:Test",
                                                polygon_object());
  xml::Document parsed = xml::parse_document(doc);
  auto multirefs = parsed.root->child("Body")->children_named("multiRef");
  // 1 polygon + 2 arrays (points, tags) + 3 points = 6.
  EXPECT_EQ(multirefs.size(), 6u);
}

TEST(MultirefRoundTripTest, ComplexObjectSurvives) {
  Object original = polygon_object();
  std::string doc =
      serialize_response_multiref(op("echoPolygon"), "urn:Test", original);
  Object decoded = read_response(xml::XmlTextSource(doc), op("echoPolygon"));
  EXPECT_TRUE(reflect::deep_equals(original, decoded));
}

TEST(MultirefRoundTripTest, EmptyContainersSurvive) {
  reflect::testing::ensure_test_types();
  Polygon empty;
  empty.name = "bare";
  Object original = Object::make(empty);
  std::string doc =
      serialize_response_multiref(op("echoPolygon"), "urn:Test", original);
  Object decoded = read_response(xml::XmlTextSource(doc), op("echoPolygon"));
  EXPECT_TRUE(reflect::deep_equals(original, decoded));
}

TEST(MultirefRoundTripTest, SurvivesEventReplay) {
  // The cache's SAX representation stores multiref documents verbatim;
  // replay must resolve identically (the paper's hit path, multiref form).
  Object original = polygon_object();
  std::string doc =
      serialize_response_multiref(op("echoPolygon"), "urn:Test", original);
  xml::EventRecorder recorder;
  xml::SaxParser{}.parse(doc, recorder);
  Object decoded = read_response(recorder.sequence(), op("echoPolygon"));
  EXPECT_TRUE(reflect::deep_equals(original, decoded));

  // Replays construct fresh objects each time.
  Object again = read_response(recorder.sequence(), op("echoPolygon"));
  EXPECT_NE(decoded.data(), again.data());
  EXPECT_TRUE(reflect::deep_equals(decoded, again));
}

TEST(MultirefRoundTripTest, DispatcherSwitchProducesDecodableResponses) {
  auto service = make_test_service();
  service->set_multiref_responses(true);
  EXPECT_TRUE(service->multiref_responses());

  RpcRequest request;
  request.ns = "urn:Test";
  request.operation = "echoPolygon";
  request.params = {{"p", polygon_object()}};
  auto result = service->handle(serialize_request(request));
  ASSERT_FALSE(result.fault);
  EXPECT_NE(result.xml.find("multiRef"), std::string::npos);
  Object decoded =
      read_response(xml::XmlTextSource(result.xml), op("echoPolygon"));
  EXPECT_TRUE(reflect::deep_equals(decoded, request.params[0].value));
}

// --- hand-authored documents: interop and error paths ---------------------------

std::string envelope(const std::string& body) {
  return "<soapenv:Envelope "
         "xmlns:soapenv=\"http://schemas.xmlsoap.org/soap/envelope/\">"
         "<soapenv:Body>" + body + "</soapenv:Body></soapenv:Envelope>";
}

TEST(MultirefDecoderTest, MultirefsBeforeWrapperAccepted) {
  // Some stacks emit the multiRef table before the RPC wrapper.
  std::string doc = envelope(
      "<multiRef id=\"x\"><name>pre</name><weight>1.5</weight>"
      "<closed>true</closed></multiRef>"
      "<w:echoPolygonResponse xmlns:w=\"urn:Test\">"
      "<return href=\"#x\"/></w:echoPolygonResponse>");
  Object decoded = read_response(xml::XmlTextSource(doc), op("echoPolygon"));
  EXPECT_EQ(decoded.as<Polygon>().name, "pre");
  EXPECT_TRUE(decoded.as<Polygon>().closed);
}

TEST(MultirefDecoderTest, WhitespaceTolerated) {
  std::string doc = envelope(
      "\n  <w:echoPolygonResponse xmlns:w=\"urn:Test\">\n"
      "    <return href=\"#a\"/>\n  </w:echoPolygonResponse>\n"
      "  <multiRef id=\"a\">\n    <name>ws</name>\n  </multiRef>\n");
  EXPECT_EQ(read_response(xml::XmlTextSource(doc), op("echoPolygon"))
                .as<Polygon>().name,
            "ws");
}

TEST(MultirefDecoderTest, UnknownIdThrows) {
  std::string doc = envelope(
      "<w:echoPolygonResponse xmlns:w=\"urn:Test\">"
      "<return href=\"#ghost\"/></w:echoPolygonResponse>");
  EXPECT_THROW(read_response(xml::XmlTextSource(doc), op("echoPolygon")),
               ParseError);
}

TEST(MultirefDecoderTest, ReferenceCycleThrows) {
  // points (ArrayOfPoint) referencing itself: resolution must not recurse
  // forever.
  std::string doc = envelope(
      "<w:echoPolygonResponse xmlns:w=\"urn:Test\">"
      "<return href=\"#a\"/></w:echoPolygonResponse>"
      "<multiRef id=\"a\"><name>cyc</name><points href=\"#a\"/></multiRef>");
  EXPECT_THROW(read_response(xml::XmlTextSource(doc), op("echoPolygon")),
               ParseError);
}

TEST(MultirefDecoderTest, HrefElementMustBeEmpty) {
  std::string doc = envelope(
      "<w:echoPolygonResponse xmlns:w=\"urn:Test\">"
      "<return href=\"#a\"><name>inline-too</name></return>"
      "</w:echoPolygonResponse><multiRef id=\"a\"><name>x</name></multiRef>");
  EXPECT_THROW(read_response(xml::XmlTextSource(doc), op("echoPolygon")),
               ParseError);
}

TEST(MultirefDecoderTest, NonLocalHrefRejected) {
  std::string doc = envelope(
      "<w:echoPolygonResponse xmlns:w=\"urn:Test\">"
      "<return href=\"http://elsewhere/#a\"/></w:echoPolygonResponse>");
  EXPECT_THROW(read_response(xml::XmlTextSource(doc), op("echoPolygon")),
               ParseError);
}

TEST(MultirefDecoderTest, MultirefWithoutIdRejected) {
  std::string doc = envelope(
      "<w:echoPolygonResponse xmlns:w=\"urn:Test\">"
      "<return href=\"#a\"/></w:echoPolygonResponse>"
      "<multiRef><name>x</name></multiRef>");
  EXPECT_THROW(read_response(xml::XmlTextSource(doc), op("echoPolygon")),
               ParseError);
}

TEST(MultirefDecoderTest, SharedTargetDecodedIntoBothSites) {
  // Two array items referencing the same multiRef: call-by-copy semantics
  // give each slot its own copy of the value.
  std::string doc = envelope(
      "<w:echoPolygonResponse xmlns:w=\"urn:Test\">"
      "<return href=\"#poly\"/></w:echoPolygonResponse>"
      "<multiRef id=\"poly\"><name>shared</name><points href=\"#arr\"/></multiRef>"
      "<multiRef id=\"arr\"><item href=\"#pt\"/><item href=\"#pt\"/></multiRef>"
      "<multiRef id=\"pt\"><x>3</x><y>4</y><label>twice</label></multiRef>");
  Object decoded = read_response(xml::XmlTextSource(doc), op("echoPolygon"));
  const Polygon& p = decoded.as<Polygon>();
  ASSERT_EQ(p.points.size(), 2u);
  EXPECT_EQ(p.points[0], p.points[1]);
  EXPECT_EQ(p.points[0].label, "twice");
}

TEST(MultirefDecoderTest, RequestsWithHrefRejected) {
  std::string doc = envelope(
      "<w:echoPolygon xmlns:w=\"urn:Test\"><p href=\"#a\"/></w:echoPolygon>"
      "<multiRef id=\"a\"><name>x</name></multiRef>");
  EXPECT_THROW(read_request(doc, *test_description()), ParseError);
}

}  // namespace
}  // namespace wsc::soap
