#include "soap/deserializer.hpp"

#include <gtest/gtest.h>

#include "reflect/algorithms.hpp"
#include "soap/serializer.hpp"
#include "tests/soap/test_service.hpp"
#include "util/error.hpp"
#include "xml/event_sequence.hpp"
#include "xml/sax_parser.hpp"

namespace wsc::soap {
namespace {

using reflect::Object;
using reflect::testing::sample_polygon;
using wsc::soap::testing::Polygon;
using wsc::soap::testing::test_description;

const wsdl::OperationInfo& op(const char* name) {
  return test_description()->require_operation(name);
}

/// Build the canonical complex payload, making sure types are registered
/// first (tests may construct objects before touching the description).
Object make_polygon_object() {
  reflect::testing::ensure_test_types();
  return Object::make(sample_polygon());
}

Object parse_response_text(const std::string& xml_text,
                           const wsdl::OperationInfo& operation) {
  return read_response(xml::XmlTextSource(xml_text), operation);
}

TEST(ResponseReaderTest, ReadsStringResult) {
  std::string doc = serialize_response(op("echoString"), "urn:Test",
                                       Object::make(std::string("payload")));
  Object result = parse_response_text(doc, op("echoString"));
  EXPECT_EQ(result.as<std::string>(), "payload");
}

TEST(ResponseReaderTest, ReadsComplexResult) {
  Object original = make_polygon_object();
  std::string doc = serialize_response(op("echoPolygon"), "urn:Test", original);
  Object result = parse_response_text(doc, op("echoPolygon"));
  EXPECT_TRUE(reflect::deep_equals(original, result));
}

TEST(ResponseReaderTest, ReadsBytesResult) {
  std::vector<std::uint8_t> bytes{0, 1, 2, 3, 255};
  std::string doc =
      serialize_response(op("getBytes"), "urn:Test", Object::make(bytes));
  Object result = parse_response_text(doc, op("getBytes"));
  EXPECT_EQ(result.as<std::vector<std::uint8_t>>(), bytes);
}

TEST(ResponseReaderTest, ReadsVoidResult) {
  std::string doc = serialize_response(op("voidOp"), "urn:Test", Object{});
  EXPECT_TRUE(parse_response_text(doc, op("voidOp")).is_null());
}

TEST(ResponseReaderTest, FaultBecomesSoapFault) {
  std::string doc = serialize_fault("Server", "boom");
  try {
    parse_response_text(doc, op("echoString"));
    FAIL() << "expected SoapFault";
  } catch (const SoapFault& f) {
    EXPECT_EQ(f.faultcode(), "soapenv:Server");
    EXPECT_EQ(f.faultstring(), "boom");
  }
}

TEST(ResponseReaderTest, SkipsSoapHeader) {
  std::string doc =
      "<soapenv:Envelope xmlns:soapenv=\"http://schemas.xmlsoap.org/soap/envelope/\">"
      "<soapenv:Header><wsse:Security xmlns:wsse=\"urn:sec\"><t>abc</t></wsse:Security>"
      "</soapenv:Header>"
      "<soapenv:Body><r:echoStringResponse xmlns:r=\"urn:Test\">"
      "<return>ok</return></r:echoStringResponse></soapenv:Body></soapenv:Envelope>";
  EXPECT_EQ(parse_response_text(doc, op("echoString")).as<std::string>(), "ok");
}

TEST(ResponseReaderTest, AcceptsAnyResultElementName) {
  // Axis names it "return" but decoders accept any name.
  std::string doc =
      "<soapenv:Envelope xmlns:soapenv=\"http://schemas.xmlsoap.org/soap/envelope/\">"
      "<soapenv:Body><r:echoStringResponse xmlns:r=\"urn:Test\">"
      "<echoStringReturn>ok</echoStringReturn>"
      "</r:echoStringResponse></soapenv:Body></soapenv:Envelope>";
  EXPECT_EQ(parse_response_text(doc, op("echoString")).as<std::string>(), "ok");
}

TEST(ResponseReaderTest, ReplayedEventsEqualLiveParse) {
  // THE paper mechanism: record once, replay into the same reader.
  Object original = make_polygon_object();
  std::string doc = serialize_response(op("echoPolygon"), "urn:Test", original);

  xml::EventRecorder recorder;
  xml::SaxParser{}.parse(doc, recorder);
  xml::EventSequence seq = recorder.take();

  Object from_replay = read_response(seq, op("echoPolygon"));
  Object from_text = parse_response_text(doc, op("echoPolygon"));
  EXPECT_TRUE(reflect::deep_equals(from_replay, from_text));

  // Each replay constructs a brand-new object.
  Object again = read_response(seq, op("echoPolygon"));
  EXPECT_NE(from_replay.data(), again.data());
}

class ResponseReaderRejects : public ::testing::TestWithParam<const char*> {};

TEST_P(ResponseReaderRejects, MalformedResponsesThrow) {
  EXPECT_THROW(parse_response_text(GetParam(), op("echoString")), Error);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, ResponseReaderRejects,
    ::testing::Values(
        // Wrong root element.
        "<NotEnvelope/>",
        // Envelope not in the SOAP namespace.
        "<Envelope><Body><echoStringResponse><r>x</r></echoStringResponse></Body></Envelope>",
        // Wrong wrapper operation name.
        "<e:Envelope xmlns:e=\"http://schemas.xmlsoap.org/soap/envelope/\">"
        "<e:Body><w:otherResponse xmlns:w=\"urn:Test\"><r>x</r></w:otherResponse>"
        "</e:Body></e:Envelope>",
        // Missing result element for a non-void operation.
        "<e:Envelope xmlns:e=\"http://schemas.xmlsoap.org/soap/envelope/\">"
        "<e:Body><w:echoStringResponse xmlns:w=\"urn:Test\"/></e:Body></e:Envelope>",
        // Two result elements.
        "<e:Envelope xmlns:e=\"http://schemas.xmlsoap.org/soap/envelope/\">"
        "<e:Body><w:echoStringResponse xmlns:w=\"urn:Test\"><a>1</a><b>2</b>"
        "</w:echoStringResponse></e:Body></e:Envelope>",
        // Stray character data inside the Body.
        "<e:Envelope xmlns:e=\"http://schemas.xmlsoap.org/soap/envelope/\">"
        "<e:Body>loose text</e:Body></e:Envelope>"));

// --- RequestReader ------------------------------------------------------------

TEST(RequestReaderTest, RoundTripsSerializedRequest) {
  RpcRequest original;
  original.endpoint = "http://x/y";
  original.ns = "urn:Test";
  original.operation = "echoPolygon";
  original.params = {{"p", make_polygon_object()}};

  RpcRequest decoded =
      read_request(serialize_request(original), *test_description());
  EXPECT_EQ(decoded.operation, "echoPolygon");
  EXPECT_EQ(decoded.ns, "urn:Test");
  ASSERT_EQ(decoded.params.size(), 1u);
  EXPECT_EQ(decoded.params[0].name, "p");
  EXPECT_TRUE(reflect::deep_equals(decoded.params[0].value, original.params[0].value));
}

TEST(RequestReaderTest, UnknownOperationThrows) {
  RpcRequest r;
  r.ns = "urn:Test";
  r.operation = "echoString";
  r.params = {{"s", Object::make(std::string("x"))}};
  std::string doc = serialize_request(r);
  // Patch the operation name to something undeclared.
  std::string bad = doc;
  auto replace_all = [&bad](const std::string& from, const std::string& to) {
    for (std::size_t pos = 0; (pos = bad.find(from, pos)) != std::string::npos;
         pos += to.size())
      bad.replace(pos, from.size(), to);
  };
  replace_all("echoString", "mysteryOp");
  EXPECT_THROW(read_request(bad, *test_description()), ParseError);
}

TEST(RequestReaderTest, MissingParameterThrows) {
  std::string doc =
      "<e:Envelope xmlns:e=\"http://schemas.xmlsoap.org/soap/envelope/\">"
      "<e:Body><w:echoString xmlns:w=\"urn:Test\"/></e:Body></e:Envelope>";
  EXPECT_THROW(read_request(doc, *test_description()), ParseError);
}

TEST(RequestReaderTest, UnknownParameterThrows) {
  std::string doc =
      "<e:Envelope xmlns:e=\"http://schemas.xmlsoap.org/soap/envelope/\">"
      "<e:Body><w:echoString xmlns:w=\"urn:Test\"><bogus>1</bogus></w:echoString>"
      "</e:Body></e:Envelope>";
  EXPECT_THROW(read_request(doc, *test_description()), ParseError);
}

TEST(RequestReaderTest, DuplicateParameterThrows) {
  std::string doc =
      "<e:Envelope xmlns:e=\"http://schemas.xmlsoap.org/soap/envelope/\">"
      "<e:Body><w:echoString xmlns:w=\"urn:Test\"><s>1</s><s>2</s></w:echoString>"
      "</e:Body></e:Envelope>";
  EXPECT_THROW(read_request(doc, *test_description()), ParseError);
}

TEST(RequestReaderTest, TypeMismatchInParameterThrows) {
  std::string doc =
      "<e:Envelope xmlns:e=\"http://schemas.xmlsoap.org/soap/envelope/\">"
      "<e:Body><w:getBytes xmlns:w=\"urn:Test\"><n>not-a-number</n></w:getBytes>"
      "</e:Body></e:Envelope>";
  EXPECT_THROW(read_request(doc, *test_description()), ParseError);
}

}  // namespace
}  // namespace wsc::soap
