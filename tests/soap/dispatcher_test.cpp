#include "soap/dispatcher.hpp"

#include <gtest/gtest.h>

#include "reflect/algorithms.hpp"
#include "soap/deserializer.hpp"
#include "soap/serializer.hpp"
#include "tests/soap/test_service.hpp"
#include "xml/sax_parser.hpp"

namespace wsc::soap {
namespace {

using reflect::Object;
using wsc::soap::testing::make_test_service;
using wsc::soap::testing::test_description;

std::string request_xml(const std::string& operation,
                        std::vector<Parameter> params) {
  RpcRequest r;
  r.ns = "urn:Test";
  r.operation = operation;
  r.params = std::move(params);
  return serialize_request(r);
}

TEST(DispatcherTest, DispatchesAndEncodesResult) {
  auto service = make_test_service();
  auto result =
      service->handle(request_xml("echoString", {{"s", Object::make(std::string("hi"))}}));
  EXPECT_FALSE(result.fault);
  EXPECT_EQ(result.operation, "echoString");

  Object decoded = read_response(
      xml::XmlTextSource(result.xml),
      test_description()->require_operation("echoString"));
  EXPECT_EQ(decoded.as<std::string>(), "echo:hi");
}

TEST(DispatcherTest, VoidOperation) {
  auto service = make_test_service();
  auto result = service->handle(
      request_xml("voidOp", {{"x", Object::make(std::int32_t{1})}}));
  EXPECT_FALSE(result.fault);
  Object decoded =
      read_response(xml::XmlTextSource(result.xml),
                    test_description()->require_operation("voidOp"));
  EXPECT_TRUE(decoded.is_null());
}

TEST(DispatcherTest, HandlerExceptionBecomesServerFault) {
  auto service = make_test_service();
  auto result = service->handle(
      request_xml("failOp", {{"msg", Object::make(std::string("nope"))}}));
  EXPECT_TRUE(result.fault);
  EXPECT_EQ(result.operation, "failOp");
  EXPECT_NE(result.xml.find("intentional failure: nope"), std::string::npos);
  EXPECT_NE(result.xml.find("soapenv:Server"), std::string::npos);
}

TEST(DispatcherTest, MalformedXmlBecomesClientFault) {
  auto service = make_test_service();
  auto result = service->handle("this is not xml");
  EXPECT_TRUE(result.fault);
  EXPECT_TRUE(result.operation.empty());
  EXPECT_NE(result.xml.find("soapenv:Client"), std::string::npos);
}

TEST(DispatcherTest, UnknownOperationBecomesClientFault) {
  auto service = make_test_service();
  std::string doc =
      "<e:Envelope xmlns:e=\"http://schemas.xmlsoap.org/soap/envelope/\">"
      "<e:Body><w:ghostOp xmlns:w=\"urn:Test\"/></e:Body></e:Envelope>";
  auto result = service->handle(doc);
  EXPECT_TRUE(result.fault);
}

TEST(DispatcherTest, UnboundOperationBecomesServerFault) {
  // A contract operation with no implementation attached.
  auto service = std::make_shared<SoapService>(*test_description());
  auto result = service->handle(
      request_xml("echoString", {{"s", Object::make(std::string("x"))}}));
  EXPECT_TRUE(result.fault);
  EXPECT_NE(result.xml.find("not bound"), std::string::npos);
}

TEST(DispatcherTest, BindRejectsUnknownOperation) {
  auto service = make_test_service();
  EXPECT_THROW(
      service->bind("notInContract", [](const std::vector<Parameter>&) {
        return Object{};
      }),
      Error);
}

TEST(DispatcherTest, FullLoopPreservesComplexPayload) {
  auto service = make_test_service();
  Object polygon = Object::make(reflect::testing::sample_polygon());
  auto result =
      service->handle(request_xml("echoPolygon", {{"p", polygon}}));
  ASSERT_FALSE(result.fault);
  Object decoded =
      read_response(xml::XmlTextSource(result.xml),
                    test_description()->require_operation("echoPolygon"));
  EXPECT_TRUE(reflect::deep_equals(polygon, decoded));
}

}  // namespace
}  // namespace wsc::soap
