// Shared in-memory test service for the SOAP-layer tests.
#pragma once

#include <memory>

#include "reflect/object.hpp"
#include "soap/dispatcher.hpp"
#include "tests/reflect/test_types.hpp"
#include "wsdl/description.hpp"

namespace wsc::soap::testing {

using reflect::testing::ensure_test_types;
using reflect::testing::Polygon;

inline std::shared_ptr<const wsdl::ServiceDescription> test_description() {
  static const std::shared_ptr<const wsdl::ServiceDescription> desc = [] {
    ensure_test_types();
    auto d = std::make_shared<wsdl::ServiceDescription>("TestService", "urn:Test");
    const auto& str = reflect::type_of<std::string>();
    const auto& i32 = reflect::type_of<std::int32_t>();

    wsdl::OperationInfo echo;
    echo.name = "echoString";
    echo.params = {{"s", &str}};
    echo.result_type = &str;
    d->add_operation(std::move(echo));

    wsdl::OperationInfo echo_poly;
    echo_poly.name = "echoPolygon";
    echo_poly.params = {{"p", &reflect::type_of<Polygon>()}};
    echo_poly.result_type = &reflect::type_of<Polygon>();
    d->add_operation(std::move(echo_poly));

    wsdl::OperationInfo get_bytes;
    get_bytes.name = "getBytes";
    get_bytes.params = {{"n", &i32}};
    get_bytes.result_type = &reflect::type_of<std::vector<std::uint8_t>>();
    d->add_operation(std::move(get_bytes));

    wsdl::OperationInfo void_op;
    void_op.name = "voidOp";
    void_op.params = {{"x", &i32}};
    void_op.result_type = nullptr;
    d->add_operation(std::move(void_op));

    wsdl::OperationInfo fail_op;
    fail_op.name = "failOp";
    fail_op.params = {{"msg", &str}};
    fail_op.result_type = &str;
    d->add_operation(std::move(fail_op));
    return d;
  }();
  return desc;
}

inline std::shared_ptr<SoapService> make_test_service() {
  auto service = std::make_shared<SoapService>(*test_description());
  service->bind("echoString", [](const std::vector<Parameter>& p) {
    return reflect::Object::make("echo:" + p.at(0).value.as<std::string>());
  });
  service->bind("echoPolygon", [](const std::vector<Parameter>& p) {
    return reflect::Object::make(p.at(0).value.as<Polygon>());
  });
  service->bind("getBytes", [](const std::vector<Parameter>& p) {
    auto n = static_cast<std::size_t>(p.at(0).value.as<std::int32_t>());
    std::vector<std::uint8_t> out(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<std::uint8_t>(i);
    return reflect::Object::make(std::move(out));
  });
  service->bind("voidOp",
                [](const std::vector<Parameter>&) { return reflect::Object{}; });
  service->bind("failOp", [](const std::vector<Parameter>& p) -> reflect::Object {
    throw Error("intentional failure: " + p.at(0).value.as<std::string>());
  });
  return service;
}

}  // namespace wsc::soap::testing
