// Direct ValueReader API tests (the deserializer core), including the
// children-only multiRef entry points.
#include "soap/value_reader.hpp"

#include <gtest/gtest.h>

#include "tests/reflect/test_types.hpp"
#include "util/error.hpp"

namespace wsc::soap {
namespace {

using reflect::Object;
using reflect::testing::ensure_test_types;
using reflect::testing::Point;

xml::QName q(const char* local) { return xml::QName{"", local, local}; }

TEST(ValueReaderTest, PrimitiveFromText) {
  ValueReader reader(reflect::type_of<std::int32_t>());
  reader.characters("42");
  EXPECT_TRUE(reader.end_element(q("n")));
  EXPECT_EQ(reader.take().as<std::int32_t>(), 42);
}

TEST(ValueReaderTest, TextDeliveredInChunks) {
  ValueReader reader(reflect::type_of<std::string>());
  reader.characters("hello ");
  reader.characters("world");
  reader.end_element(q("s"));
  EXPECT_EQ(reader.take().as<std::string>(), "hello world");
}

TEST(ValueReaderTest, StructFieldsByName) {
  ensure_test_types();
  ValueReader reader(reflect::type_of<Point>());
  reader.start_element(q("y"), {});
  reader.characters("7");
  reader.end_element(q("y"));
  reader.start_element(q("label"), {});
  reader.characters("L");
  reader.end_element(q("label"));
  EXPECT_TRUE(reader.end_element(q("p")));
  Point p = reader.take().as<Point>();
  EXPECT_EQ(p.x, 0);  // unset fields keep defaults
  EXPECT_EQ(p.y, 7);
  EXPECT_EQ(p.label, "L");
}

TEST(ValueReaderTest, TakeBeforeDoneThrows) {
  ValueReader reader(reflect::type_of<std::string>());
  EXPECT_THROW(reader.take(), ParseError);
}

TEST(ValueReaderTest, EventsAfterDoneThrow) {
  ValueReader reader(reflect::type_of<std::string>());
  reader.end_element(q("s"));
  EXPECT_THROW(reader.characters("late"), ParseError);
  EXPECT_THROW(reader.start_element(q("x"), {}), ParseError);
  EXPECT_THROW(reader.end_element(q("x")), ParseError);
}

TEST(ValueReaderTest, FinishRootClosesChildrenOnlyStream) {
  ensure_test_types();
  ValueReader reader(reflect::type_of<Point>());
  reader.start_element(q("x"), {});
  reader.characters("3");
  reader.end_element(q("x"));
  reader.finish_root();  // no enclosing end tag in the stream
  EXPECT_TRUE(reader.done());
  EXPECT_EQ(reader.take().as<Point>().x, 3);
}

TEST(ValueReaderTest, FinishRootWithOpenChildrenThrows) {
  ensure_test_types();
  ValueReader reader(reflect::type_of<Point>());
  reader.start_element(q("x"), {});
  EXPECT_THROW(reader.finish_root(), ParseError);
}

TEST(ValueReaderTest, BadPrimitiveTextThrows) {
  ValueReader reader(reflect::type_of<std::int32_t>());
  reader.characters("not a number");
  EXPECT_THROW(reader.end_element(q("n")), ParseError);
}

TEST(ValueReaderTest, PendingRefTrackedAndBlocksTake) {
  ensure_test_types();
  xml::Attributes href_attr{{xml::QName{"", "href", "href"}, "#id9"}};
  ValueReader reader(reflect::type_of<Point>());
  reader.begin(href_attr);
  reader.end_element(q("p"));
  EXPECT_TRUE(reader.done());
  EXPECT_TRUE(reader.has_pending());
  EXPECT_THROW(reader.take(), ParseError);  // unresolved reference
}

TEST(ValueReaderTest, ResolvePendingFillsSlot) {
  ensure_test_types();
  struct FixedResolver final : RefResolver {
    void fill(const reflect::TypeInfo& type, void* target,
              std::string_view id) override {
      ASSERT_EQ(id, "id9");
      ASSERT_EQ(&type, &reflect::type_of<std::int32_t>());
      *static_cast<std::int32_t*>(target) = 99;
    }
  } resolver;

  xml::Attributes href_attr{{xml::QName{"", "href", "href"}, "#id9"}};
  ValueReader reader(reflect::type_of<Point>());
  reader.start_element(q("x"), href_attr);
  reader.end_element(q("x"));
  reader.end_element(q("p"));
  reader.resolve_pending(resolver);
  EXPECT_FALSE(reader.has_pending());
  EXPECT_EQ(reader.take().as<Point>().x, 99);
}

TEST(ValueReaderTest, NonLocalHrefRejected) {
  ValueReader reader(reflect::type_of<std::string>());
  xml::Attributes bad{{xml::QName{"", "href", "href"}, "http://x#y"}};
  EXPECT_THROW(reader.begin(bad), ParseError);
}

}  // namespace
}  // namespace wsc::soap
