#include "soap/serializer.hpp"

#include <gtest/gtest.h>

#include "tests/soap/test_service.hpp"
#include "util/error.hpp"
#include "xml/dom.hpp"

namespace wsc::soap {
namespace {

using reflect::Object;
using reflect::testing::Point;
using wsc::soap::testing::test_description;

RpcRequest sample_request() {
  RpcRequest r;
  r.endpoint = "http://svc.example/soap";
  r.ns = "urn:Test";
  r.operation = "echoString";
  r.params = {{"s", Object::make(std::string("hello & <world>"))}};
  return r;
}

TEST(SerializerTest, RequestEnvelopeStructure) {
  reflect::testing::ensure_test_types();
  xml::Document doc = xml::parse_document(serialize_request(sample_request()));
  const xml::Node& env = *doc.root;
  EXPECT_EQ(env.name().local, "Envelope");
  EXPECT_EQ(env.name().uri, kEnvelopeNs);
  const xml::Node* body = env.child("Body");
  ASSERT_NE(body, nullptr);
  const xml::Node* op = body->child("echoString");
  ASSERT_NE(op, nullptr);
  EXPECT_EQ(op->name().uri, "urn:Test");
  const xml::Node* param = op->child("s");
  ASSERT_NE(param, nullptr);
  EXPECT_EQ(param->text_content(), "hello & <world>");
  EXPECT_EQ(param->attribute("type"), "xsd:string");
}

TEST(SerializerTest, EncodingStyleDeclared) {
  reflect::testing::ensure_test_types();
  std::string xml_text = serialize_request(sample_request());
  EXPECT_NE(xml_text.find("soapenv:encodingStyle"), std::string::npos);
  EXPECT_NE(xml_text.find(kEncodingNs), std::string::npos);
}

TEST(SerializerTest, PrimitiveXsiTypes) {
  reflect::testing::ensure_test_types();
  xml::Writer w(false);
  std::int32_t i = 5;
  double d = 1.5;
  bool b = true;
  std::int64_t l = 7;
  write_value(w, "a", reflect::type_of<std::int32_t>(), &i);
  write_value(w, "b", reflect::type_of<double>(), &d);
  write_value(w, "c", reflect::type_of<bool>(), &b);
  write_value(w, "d", reflect::type_of<std::int64_t>(), &l);
  EXPECT_EQ(w.finish(),
            "<a xsi:type=\"xsd:int\">5</a><b xsi:type=\"xsd:double\">1.5</b>"
            "<c xsi:type=\"xsd:boolean\">true</c><d xsi:type=\"xsd:long\">7</d>");
}

TEST(SerializerTest, BytesEncodedAsBase64) {
  reflect::testing::ensure_test_types();
  xml::Writer w(false);
  std::vector<std::uint8_t> bytes{'f', 'o', 'o'};
  write_value(w, "blob", reflect::type_of<std::vector<std::uint8_t>>(), &bytes);
  EXPECT_EQ(w.finish(), "<blob xsi:type=\"xsd:base64Binary\">Zm9v</blob>");
}

TEST(SerializerTest, StructSerializesFieldsInDeclarationOrder) {
  reflect::testing::ensure_test_types();
  xml::Writer w(false);
  Point p{1, 2, "L"};
  write_value(w, "p", reflect::type_of<Point>(), &p);
  // Primitive members rely on the schema (no per-field xsi:type).
  EXPECT_EQ(w.finish(),
            "<p xsi:type=\"ns1:test.Point\"><x>1</x><y>2</y><label>L</label></p>");
}

TEST(SerializerTest, ArraySerializesWithArrayType) {
  reflect::testing::ensure_test_types();
  xml::Writer w(false);
  std::vector<std::string> v{"a", "b"};
  write_value(w, "arr", reflect::type_of<std::vector<std::string>>(), &v);
  std::string out = w.finish();
  EXPECT_NE(out.find("soapenc:arrayType=\"xsd:string[2]\""), std::string::npos);
  EXPECT_NE(out.find("<item xsi:type=\"xsd:string\">a</item>"), std::string::npos);
}

TEST(SerializerTest, ResponseEnvelope) {
  reflect::testing::ensure_test_types();
  const wsdl::OperationInfo& op = test_description()->require_operation("echoString");
  std::string xml_text =
      serialize_response(op, "urn:Test", Object::make(std::string("result!")));
  xml::Document doc = xml::parse_document(xml_text);
  const xml::Node* wrapper = doc.root->child("Body")->child("echoStringResponse");
  ASSERT_NE(wrapper, nullptr);
  EXPECT_EQ(wrapper->child("return")->text_content(), "result!");
}

TEST(SerializerTest, VoidResponseHasEmptyWrapper) {
  const wsdl::OperationInfo& op = test_description()->require_operation("voidOp");
  std::string xml_text = serialize_response(op, "urn:Test", Object{});
  xml::Document doc = xml::parse_document(xml_text);
  const xml::Node* wrapper = doc.root->child("Body")->child("voidOpResponse");
  ASSERT_NE(wrapper, nullptr);
  EXPECT_TRUE(wrapper->children().empty());
}

TEST(SerializerTest, NullResultForNonVoidThrows) {
  const wsdl::OperationInfo& op = test_description()->require_operation("echoString");
  EXPECT_THROW(serialize_response(op, "urn:Test", Object{}), SerializationError);
}

TEST(SerializerTest, MismatchedResultTypeThrows) {
  const wsdl::OperationInfo& op = test_description()->require_operation("echoString");
  EXPECT_THROW(serialize_response(op, "urn:Test", Object::make(std::int32_t{1})),
               SerializationError);
}

TEST(SerializerTest, NullParameterThrows) {
  RpcRequest r = sample_request();
  r.params[0].value = Object{};
  EXPECT_THROW(serialize_request(r), SerializationError);
}

TEST(SerializerTest, FaultEnvelope) {
  std::string xml_text = serialize_fault("Client", "bad request & more");
  xml::Document doc = xml::parse_document(xml_text);
  const xml::Node* fault = doc.root->child("Body")->child("Fault");
  ASSERT_NE(fault, nullptr);
  EXPECT_EQ(fault->child("faultcode")->text_content(), "soapenv:Client");
  EXPECT_EQ(fault->child("faultstring")->text_content(), "bad request & more");
}

TEST(SerializerTest, RequestSizeRealisticForSpellingSuggestion) {
  // Table 8 reports ~586 bytes for the SpellingSuggestion request XML; our
  // envelope should be in that neighbourhood (same order of magnitude).
  RpcRequest r;
  r.endpoint = "http://api.google.com/search/beta2";
  r.ns = "urn:GoogleSearch";
  r.operation = "doSpellingSuggestion";
  r.params = {{"key", Object::make(std::string("00000000000000000000000000000000"))},
              {"phrase", Object::make(std::string("web servies"))}};
  std::size_t size = serialize_request(r).size();
  EXPECT_GT(size, 350u);
  EXPECT_LT(size, 900u);
}

}  // namespace
}  // namespace wsc::soap
