// Property sweep over the full XML pipeline: random object trees must
// survive serialize -> parse -> deserialize for responses and requests,
// including via recorded event sequences.
#include <gtest/gtest.h>

#include "reflect/algorithms.hpp"
#include "soap/deserializer.hpp"
#include "soap/serializer.hpp"
#include "tests/soap/test_service.hpp"
#include "util/random.hpp"
#include "xml/compact_event_sequence.hpp"
#include "xml/event_sequence.hpp"
#include "xml/sax_parser.hpp"

namespace wsc::soap {
namespace {

using reflect::Object;
using reflect::testing::Point;
using wsc::soap::testing::Polygon;
using wsc::soap::testing::test_description;

/// Strings drawn to stress XML escaping: markup, quotes, entities, unicode.
std::string nasty_string(util::Rng& rng) {
  static const char* kNasty[] = {
      "",
      "plain",
      "<tag>",
      "a&b",
      "quote\"inside'",
      "]]>",
      "line\nbreak\ttab",
      "\xC3\xA9\xE2\x82\xAC",  // é€ in UTF-8
      "&amp; already escaped",
      "  leading and trailing  ",
  };
  if (rng.next_bool(0.5)) return kNasty[rng.next_below(std::size(kNasty))];
  return rng.next_sentence(1 + rng.next_below(6));
}

Polygon random_polygon(util::Rng& rng) {
  Polygon p;
  p.name = nasty_string(rng);
  p.weight = rng.next_double() * 1000 - 500;
  p.closed = rng.next_bool();
  std::size_t n = rng.next_below(8);
  for (std::size_t i = 0; i < n; ++i) {
    p.points.push_back({static_cast<std::int32_t>(rng.next_range(-9999, 9999)),
                        static_cast<std::int32_t>(rng.next_range(-9999, 9999)),
                        nasty_string(rng)});
  }
  std::size_t t = rng.next_below(4);
  for (std::size_t i = 0; i < t; ++i) p.tags.push_back(nasty_string(rng));
  return p;
}

class SoapRoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override { reflect::testing::ensure_test_types(); }
};

TEST_P(SoapRoundTripProperty, ResponseSurvivesXmlPipeline) {
  util::Rng rng(GetParam());
  const wsdl::OperationInfo& op =
      test_description()->require_operation("echoPolygon");
  for (int i = 0; i < 15; ++i) {
    Object original = Object::make(random_polygon(rng));
    std::string doc = serialize_response(op, "urn:Test", original);
    Object decoded = read_response(xml::XmlTextSource(doc), op);
    EXPECT_TRUE(reflect::deep_equals(original, decoded));
  }
}

TEST_P(SoapRoundTripProperty, ResponseSurvivesEventReplay) {
  util::Rng rng(GetParam() ^ 0xEE);
  const wsdl::OperationInfo& op =
      test_description()->require_operation("echoPolygon");
  for (int i = 0; i < 15; ++i) {
    Object original = Object::make(random_polygon(rng));
    std::string doc = serialize_response(op, "urn:Test", original);
    xml::EventRecorder recorder;
    xml::SaxParser{}.parse(doc, recorder);
    Object decoded = read_response(recorder.sequence(), op);
    EXPECT_TRUE(reflect::deep_equals(original, decoded));
  }
}

TEST_P(SoapRoundTripProperty, ResponseSurvivesCompactEventReplay) {
  // Same property through the arena-backed compact recording: the
  // deserializer must see an identical event stream from the interned
  // replay (views into the arena, references into the tables).
  util::Rng rng(GetParam() ^ 0xCC);
  const wsdl::OperationInfo& op =
      test_description()->require_operation("echoPolygon");
  for (int i = 0; i < 15; ++i) {
    Object original = Object::make(random_polygon(rng));
    std::string doc = serialize_response(op, "urn:Test", original);
    xml::CompactEventRecorder recorder;
    xml::SaxParser{}.parse(doc, recorder);
    Object decoded = read_response(recorder.sequence(), op);
    EXPECT_TRUE(reflect::deep_equals(original, decoded));
  }
}

TEST_P(SoapRoundTripProperty, RequestSurvivesXmlPipeline) {
  util::Rng rng(GetParam() ^ 0x44);
  for (int i = 0; i < 15; ++i) {
    RpcRequest original;
    original.ns = "urn:Test";
    original.operation = "echoPolygon";
    original.params = {{"p", Object::make(random_polygon(rng))}};
    RpcRequest decoded =
        read_request(serialize_request(original), *test_description());
    EXPECT_TRUE(reflect::deep_equals(original.params[0].value,
                                     decoded.params[0].value));
  }
}

TEST_P(SoapRoundTripProperty, BytesOfAllSizesSurvive) {
  util::Rng rng(GetParam() ^ 0xB1);
  const wsdl::OperationInfo& op = test_description()->require_operation("getBytes");
  for (std::size_t size : {0, 1, 2, 3, 4, 100, 4096}) {
    Object original = Object::make(rng.next_bytes(size));
    std::string doc = serialize_response(op, "urn:Test", original);
    Object decoded = read_response(xml::XmlTextSource(doc), op);
    EXPECT_TRUE(reflect::deep_equals(original, decoded)) << size;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoapRoundTripProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace wsc::soap
