#include "util/clock.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace wsc::util {
namespace {

TEST(ClockTest, SteadyClockAdvances) {
  const SteadyClock& clock = steady_clock();
  TimePoint a = clock.now();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  TimePoint b = clock.now();
  EXPECT_GT(b, a);
}

TEST(ClockTest, ManualClockOnlyMovesWhenAdvanced) {
  ManualClock clock;
  TimePoint a = clock.now();
  TimePoint b = clock.now();
  EXPECT_EQ(a, b);
  clock.advance(std::chrono::seconds(5));
  EXPECT_EQ(clock.now() - a, Duration(std::chrono::seconds(5)));
}

TEST(ClockTest, ManualClockAccumulates) {
  ManualClock clock;
  TimePoint start = clock.now();
  for (int i = 0; i < 10; ++i) clock.advance(std::chrono::milliseconds(100));
  EXPECT_EQ(clock.now() - start, Duration(std::chrono::seconds(1)));
}

TEST(ClockTest, ManualClockThreadSafeAdvance) {
  ManualClock clock;
  TimePoint start = clock.now();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&clock] {
      for (int i = 0; i < 1000; ++i) clock.advance(std::chrono::nanoseconds(1));
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ((clock.now() - start).count(), 4000);
}

TEST(ClockTest, PolymorphicUseThroughBase) {
  ManualClock manual;
  const Clock& as_base = manual;
  TimePoint a = as_base.now();
  manual.advance(std::chrono::seconds(1));
  EXPECT_GT(as_base.now(), a);
}

}  // namespace
}  // namespace wsc::util
