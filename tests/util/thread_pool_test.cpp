#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "util/error.hpp"

namespace wsc::util {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.shutdown();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, DrainsQueueOnShutdown) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        counter.fetch_add(1);
      });
    }
  }  // destructor shuts down and drains
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, SubmitAfterShutdownThrows) {
  ThreadPool pool(1);
  pool.shutdown();
  EXPECT_THROW(pool.submit([] {}), Error);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.submit([] {});
  pool.shutdown();
  pool.shutdown();
  SUCCEED();
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; });
  pool.shutdown();
  EXPECT_TRUE(ran);
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};
  for (int i = 0; i < 32; ++i) {
    pool.submit([&] {
      int now = in_flight.fetch_add(1) + 1;
      int prev = max_in_flight.load();
      while (now > prev && !max_in_flight.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      in_flight.fetch_sub(1);
    });
  }
  pool.shutdown();
  // On a single-core box the OS still timeslices blocked threads.
  EXPECT_GE(max_in_flight.load(), 2);
}

}  // namespace
}  // namespace wsc::util
