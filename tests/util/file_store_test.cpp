#include "util/file_store.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "util/error.hpp"
#include "util/random.hpp"

namespace wsc::util {
namespace {

struct FileStoreFixture : ::testing::Test {
  void SetUp() override {
    dir = std::filesystem::temp_directory_path() /
          ("wsc_filestore_test_" + std::to_string(::getpid()) + "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir);
  }
  void TearDown() override { std::filesystem::remove_all(dir); }

  std::filesystem::path dir;
};

TEST_F(FileStoreFixture, PutGetRoundTrip) {
  FileStore store(dir.string());
  store.put(42, std::string_view("hello blob"));
  auto data = store.get(42);
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(std::string(data->begin(), data->end()), "hello blob");
}

TEST_F(FileStoreFixture, MissingKeyReturnsNullopt) {
  FileStore store(dir.string());
  EXPECT_FALSE(store.get(999).has_value());
}

TEST_F(FileStoreFixture, PutReplacesExisting) {
  FileStore store(dir.string());
  store.put(1, std::string_view("old"));
  store.put(1, std::string_view("new"));
  auto data = store.get(1);
  EXPECT_EQ(std::string(data->begin(), data->end()), "new");
  EXPECT_EQ(store.count(), 1u);
}

TEST_F(FileStoreFixture, BinaryBlobsIntact) {
  FileStore store(dir.string());
  Rng rng(3);
  std::vector<std::uint8_t> blob = rng.next_bytes(65536);
  store.put(7, blob);
  EXPECT_EQ(store.get(7), blob);
}

TEST_F(FileStoreFixture, EmptyBlobAllowed) {
  FileStore store(dir.string());
  store.put(5, std::string_view(""));
  auto data = store.get(5);
  ASSERT_TRUE(data.has_value());
  EXPECT_TRUE(data->empty());
}

TEST_F(FileStoreFixture, RemoveAndCount) {
  FileStore store(dir.string());
  for (std::uint64_t k = 0; k < 10; ++k)
    store.put(k, std::string_view("x"));
  EXPECT_EQ(store.count(), 10u);
  EXPECT_TRUE(store.remove(3));
  EXPECT_FALSE(store.remove(3));
  EXPECT_EQ(store.count(), 9u);
  EXPECT_FALSE(store.get(3).has_value());
}

TEST_F(FileStoreFixture, ClearEmptiesDirectory) {
  FileStore store(dir.string());
  for (std::uint64_t k = 0; k < 5; ++k) store.put(k, std::string_view("x"));
  store.clear();
  EXPECT_EQ(store.count(), 0u);
}

TEST_F(FileStoreFixture, SurvivesReopen) {
  {
    FileStore store(dir.string());
    store.put(11, std::string_view("persistent"));
  }
  FileStore reopened(dir.string());
  auto data = reopened.get(11);
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(std::string(data->begin(), data->end()), "persistent");
}

TEST_F(FileStoreFixture, DistinctKeysDistinctFiles) {
  FileStore store(dir.string());
  store.put(0x1111, std::string_view("a"));
  store.put(0x2222, std::string_view("b"));
  auto a = store.get(0x1111);
  auto b = store.get(0x2222);
  EXPECT_EQ(std::string(a->begin(), a->end()), "a");
  EXPECT_EQ(std::string(b->begin(), b->end()), "b");
}

}  // namespace
}  // namespace wsc::util
