#include "util/uri.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace wsc::util {
namespace {

TEST(UriTest, ParsesFullForm) {
  Uri u = Uri::parse("http://127.0.0.1:8080/soap/google");
  EXPECT_EQ(u.scheme, "http");
  EXPECT_EQ(u.host, "127.0.0.1");
  EXPECT_EQ(u.port, 8080);
  EXPECT_EQ(u.path, "/soap/google");
}

TEST(UriTest, DefaultsPathToRoot) {
  Uri u = Uri::parse("http://example.com");
  EXPECT_EQ(u.path, "/");
  EXPECT_EQ(u.port, 0);
  EXPECT_EQ(u.effective_port(), 80);
}

TEST(UriTest, ExplicitPortOverridesDefault) {
  EXPECT_EQ(Uri::parse("http://h:8081/").effective_port(), 8081);
}

TEST(UriTest, SchemeIsLowercased) {
  EXPECT_EQ(Uri::parse("HTTP://h/x").scheme, "http");
}

TEST(UriTest, InprocScheme) {
  Uri u = Uri::parse("inproc://services/google");
  EXPECT_EQ(u.scheme, "inproc");
  EXPECT_EQ(u.host, "services");
  EXPECT_EQ(u.path, "/google");
  EXPECT_EQ(u.effective_port(), 0);
}

TEST(UriTest, ToStringRoundTrips) {
  for (const char* s : {"http://127.0.0.1:9000/a/b", "inproc://svc/google",
                        "http://example.com/"}) {
    EXPECT_EQ(Uri::parse(s).to_string(), s);
  }
}

TEST(UriTest, EqualityIsStructural) {
  EXPECT_EQ(Uri::parse("http://a:1/x"), Uri::parse("http://a:1/x"));
  EXPECT_NE(Uri::parse("http://a:1/x"), Uri::parse("http://a:2/x"));
}

TEST(UriTest, RejectsMalformed) {
  EXPECT_THROW(Uri::parse("no-scheme"), ParseError);
  EXPECT_THROW(Uri::parse("http://"), ParseError);
  EXPECT_THROW(Uri::parse("http://:80/x"), ParseError);
  EXPECT_THROW(Uri::parse("http://h:0/x"), ParseError);
  EXPECT_THROW(Uri::parse("http://h:65536/x"), ParseError);
  EXPECT_THROW(Uri::parse("http://h:abc/x"), ParseError);
  EXPECT_THROW(Uri::parse("://h/x"), ParseError);
}

}  // namespace
}  // namespace wsc::util
