#include "util/random.hpp"

#include <gtest/gtest.h>

#include <set>

namespace wsc::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(RngTest, NextRangeInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    std::int64_t v = rng.next_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextBoolRespectsProbabilityRoughly) {
  Rng rng(13);
  int trues = 0;
  for (int i = 0; i < 10000; ++i) trues += rng.next_bool(0.25);
  EXPECT_NEAR(trues / 10000.0, 0.25, 0.03);
}

TEST(RngTest, WordsHaveRequestedLengths) {
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    std::string w = rng.next_word(3, 8);
    EXPECT_GE(w.size(), 3u);
    EXPECT_LE(w.size(), 8u);
    for (char c : w) EXPECT_TRUE(c >= 'a' && c <= 'z');
  }
}

TEST(RngTest, SentenceHasRequestedWordCount) {
  Rng rng(19);
  std::string s = rng.next_sentence(5);
  EXPECT_EQ(std::count(s.begin(), s.end(), ' '), 4);
}

TEST(RngTest, NextBytesSizeAndDeterminism) {
  Rng a(23), b(23);
  auto x = a.next_bytes(100);
  auto y = b.next_bytes(100);
  EXPECT_EQ(x.size(), 100u);
  EXPECT_EQ(x, y);
  EXPECT_TRUE(a.next_bytes(0).empty());
}

}  // namespace
}  // namespace wsc::util
