#include "util/base64.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/random.hpp"

namespace wsc::util {
namespace {

std::vector<std::uint8_t> bytes(std::initializer_list<int> vals) {
  std::vector<std::uint8_t> out;
  for (int v : vals) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

TEST(Base64Test, EncodesRfc4648Vectors) {
  EXPECT_EQ(base64_encode(""), "");
  EXPECT_EQ(base64_encode("f"), "Zg==");
  EXPECT_EQ(base64_encode("fo"), "Zm8=");
  EXPECT_EQ(base64_encode("foo"), "Zm9v");
  EXPECT_EQ(base64_encode("foob"), "Zm9vYg==");
  EXPECT_EQ(base64_encode("fooba"), "Zm9vYmE=");
  EXPECT_EQ(base64_encode("foobar"), "Zm9vYmFy");
}

TEST(Base64Test, DecodesRfc4648Vectors) {
  EXPECT_EQ(base64_decode("Zm9vYmFy"),
            std::vector<std::uint8_t>({'f', 'o', 'o', 'b', 'a', 'r'}));
  EXPECT_EQ(base64_decode("Zg=="), std::vector<std::uint8_t>({'f'}));
  EXPECT_TRUE(base64_decode("").empty());
}

TEST(Base64Test, EncodesAllByteValues) {
  std::vector<std::uint8_t> all;
  for (int i = 0; i < 256; ++i) all.push_back(static_cast<std::uint8_t>(i));
  EXPECT_EQ(base64_decode(base64_encode(all)), all);
}

TEST(Base64Test, DecodeSkipsWhitespace) {
  EXPECT_EQ(base64_decode("Zm9v\r\nYmFy"),
            std::vector<std::uint8_t>({'f', 'o', 'o', 'b', 'a', 'r'}));
  EXPECT_EQ(base64_decode("  Z g = = "), std::vector<std::uint8_t>({'f'}));
}

TEST(Base64Test, DecodeRejectsInvalidCharacter) {
  EXPECT_THROW(base64_decode("Zm9v!"), ParseError);
  EXPECT_THROW(base64_decode("Zm9v\x01"), ParseError);
}

TEST(Base64Test, DecodeRejectsDataAfterPadding) {
  EXPECT_THROW(base64_decode("Zg==Zg"), ParseError);
}

TEST(Base64Test, DecodeRejectsExcessPadding) {
  EXPECT_THROW(base64_decode("Zg==="), ParseError);
}

TEST(Base64Test, DecodeRejectsTruncatedQuantum) {
  // A single leftover symbol carries only 6 bits: not a whole byte.
  EXPECT_THROW(base64_decode("Z"), ParseError);
}

TEST(Base64Test, EncodesBinaryWithHighBytes) {
  EXPECT_EQ(base64_encode(std::span<const std::uint8_t>(bytes({0xFF, 0x00, 0xAB}))),
            "/wCr");
  EXPECT_EQ(base64_decode("/wCr"), bytes({0xFF, 0x00, 0xAB}));
}

class Base64RoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Base64RoundTrip, RandomBlocksRoundTrip) {
  Rng rng(GetParam() * 7919 + 1);
  std::vector<std::uint8_t> data = rng.next_bytes(GetParam());
  EXPECT_EQ(base64_decode(base64_encode(data)), data);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Base64RoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 63, 64, 65, 255, 256,
                                           1000, 3600, 65536));

}  // namespace
}  // namespace wsc::util
