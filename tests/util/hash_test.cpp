#include "util/hash.hpp"

#include <gtest/gtest.h>

#include <set>

namespace wsc::util {
namespace {

TEST(HashTest, Fnv1aKnownVectors) {
  // Published FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a("foobar"), 0x85944171f73967e8ULL);
}

TEST(HashTest, ByteAndStringOverloadsAgree) {
  std::string s = "hello world";
  std::vector<std::uint8_t> b(s.begin(), s.end());
  EXPECT_EQ(fnv1a(s), fnv1a(std::span<const std::uint8_t>(b)));
}

TEST(HashTest, SeedChaining) {
  // Hashing "ab" equals hashing "b" seeded with hash("a").
  EXPECT_EQ(fnv1a("ab"), fnv1a("b", fnv1a("a")));
}

TEST(HashTest, DistinctStringsDistinctHashes) {
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    seen.insert(fnv1a("key-" + std::to_string(i)));
  }
  EXPECT_EQ(seen.size(), 10000u);  // no collisions on this easy set
}

TEST(HashTest, HashCombineOrderSensitive) {
  EXPECT_NE(hash_combine(hash_combine(0, 1), 2),
            hash_combine(hash_combine(0, 2), 1));
}

TEST(HashTest, IsConstexprUsable) {
  static_assert(fnv1a("compile-time") != 0);
  SUCCEED();
}

}  // namespace
}  // namespace wsc::util
