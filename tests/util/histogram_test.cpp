#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include "util/random.hpp"

namespace wsc::util {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(0.5), 0u);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.record(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 42u);
  EXPECT_EQ(h.max(), 42u);
  EXPECT_EQ(h.mean(), 42.0);
  EXPECT_EQ(h.percentile(0.0), 42u);
  EXPECT_EQ(h.percentile(1.0), 42u);
}

TEST(HistogramTest, SmallValuesAreExact) {
  Histogram h;
  for (std::uint64_t v = 0; v < 32; ++v) h.record(v);
  EXPECT_EQ(h.percentile(0.0), 0u);
  // With 32 exact buckets, the median of 0..31 falls on 16.
  EXPECT_EQ(h.percentile(0.5), 16u);
  EXPECT_EQ(h.percentile(1.0), 31u);
}

TEST(HistogramTest, MeanIsExactRegardlessOfBuckets) {
  Histogram h;
  h.record(1'000'000);
  h.record(3'000'000);
  EXPECT_EQ(h.mean(), 2'000'000.0);
}

TEST(HistogramTest, PercentileRelativeErrorBounded) {
  Histogram h(5);
  Rng rng(7);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 20000; ++i) {
    std::uint64_t v = 1000 + rng.next_below(10'000'000);
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.5, 0.9, 0.99}) {
    std::uint64_t exact = values[static_cast<std::size_t>(q * (values.size() - 1))];
    std::uint64_t approx = h.percentile(q);
    double rel = std::abs(static_cast<double>(approx) - static_cast<double>(exact)) /
                 static_cast<double>(exact);
    EXPECT_LT(rel, 0.05) << "q=" << q;
  }
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a, b;
  a.record(10);
  a.record(20);
  b.record(30);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 30u);
  EXPECT_EQ(a.mean(), 20.0);
}

TEST(HistogramTest, MergeWithMismatchedResolutionPreservesAggregates) {
  // Regression: merging a coarse histogram into a fine one used to
  // re-record bucket upper bounds, corrupting count/sum/min/max (and thus
  // mean and percentile(1.0)).  Aggregates must transfer exactly no matter
  // the resolutions.
  Histogram fine(6), coarse(2);
  coarse.record(1'000'000);
  coarse.record(3'000'000);
  fine.record(500);
  fine.merge(coarse);
  EXPECT_EQ(fine.count(), 3u);
  EXPECT_EQ(fine.min(), 500u);
  EXPECT_EQ(fine.max(), 3'000'000u);
  EXPECT_EQ(fine.mean(), (500.0 + 1'000'000.0 + 3'000'000.0) / 3.0);

  // And the other direction (fine into coarse).
  Histogram coarse2(2), fine2(6);
  fine2.record(42);
  fine2.record(99);
  coarse2.record(7);
  coarse2.merge(fine2);
  EXPECT_EQ(coarse2.count(), 3u);
  EXPECT_EQ(coarse2.min(), 7u);
  EXPECT_EQ(coarse2.max(), 99u);
  EXPECT_EQ(coarse2.mean(), (7.0 + 42.0 + 99.0) / 3.0);
}

TEST(HistogramTest, MergeMismatchedResolutionKeepsPercentilesSane) {
  Histogram fine(6), coarse(2);
  for (std::uint64_t v = 1; v <= 1000; ++v) coarse.record(v * 1000);
  fine.merge(coarse);
  // The translated buckets still answer percentiles within the coarse
  // source's error bound (~25% at 2 sub-bucket bits).
  std::uint64_t p50 = fine.percentile(0.5);
  EXPECT_GE(p50, 350'000u);
  EXPECT_LE(p50, 650'000u);
}

TEST(HistogramTest, MergeEmptyIsNoOp) {
  Histogram a, empty;
  a.record(10);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 10u);

  Histogram b;
  b.merge(a);  // merging into an empty histogram adopts a's extremes
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.min(), 10u);
  EXPECT_EQ(b.max(), 10u);
}

TEST(HistogramTest, PercentileOneReturnsRecordedMax) {
  // Regression: percentile(1.0) used to answer the bucket upper bound,
  // which can exceed any recorded value; it must be the exact max.
  Histogram h(2);
  h.record(1'000'003);
  h.record(5);
  EXPECT_EQ(h.percentile(1.0), 1'000'003u);
  EXPECT_EQ(h.percentile(2.0), 1'000'003u);  // clamped above 1.0
}

TEST(HistogramTest, SubBucketBitsAccessor) {
  EXPECT_EQ(Histogram(3).sub_bucket_bits(), 3);
  EXPECT_EQ(Histogram().sub_bucket_bits(), 5);
}

TEST(HistogramTest, RecordsDurations) {
  Histogram h;
  h.record(std::chrono::milliseconds(5));
  EXPECT_EQ(h.max(), 5'000'000u);
  h.record(std::chrono::nanoseconds(-3));  // clamped to zero, not UB
  EXPECT_EQ(h.min(), 0u);
}

TEST(HistogramTest, SummaryMentionsAllQuantiles) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(static_cast<std::uint64_t>(i) * 1'000'000);
  std::string s = h.summary(1e6, "ms");
  EXPECT_NE(s.find("n=100"), std::string::npos);
  EXPECT_NE(s.find("p95"), std::string::npos);
  EXPECT_NE(s.find("max"), std::string::npos);
}

TEST(HistogramTest, LargeValuesDoNotCrash) {
  Histogram h;
  h.record(UINT64_MAX);
  h.record(UINT64_MAX / 2);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GE(h.percentile(1.0), UINT64_MAX / 2);
}

}  // namespace
}  // namespace wsc::util
