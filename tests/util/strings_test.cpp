#include "util/strings.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace wsc::util {
namespace {

TEST(StringsTest, TrimStripsAsciiWhitespace) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t\r\nx\n"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("a b"), "a b");
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split(",a,", ','), (std::vector<std::string>{"", "a", ""}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringsTest, JoinInvertsSplit) {
  std::vector<std::string> parts{"a", "", "c"};
  EXPECT_EQ(join(parts, ","), "a,,c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, "; "), "only");
}

TEST(StringsTest, IequalsIsCaseInsensitive) {
  EXPECT_TRUE(iequals("Content-Length", "content-length"));
  EXPECT_TRUE(iequals("", ""));
  EXPECT_FALSE(iequals("abc", "abd"));
  EXPECT_FALSE(iequals("abc", "abcd"));
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(starts_with("max-age=60", "max-age="));
  EXPECT_FALSE(starts_with("max", "max-age="));
  EXPECT_TRUE(ends_with("file.xml", ".xml"));
  EXPECT_FALSE(ends_with("xml", ".xml"));
}

TEST(StringsTest, FormatDoubleRoundTrips) {
  for (double v : {0.0, 1.5, -2.25, 0.1, 1e-300, 1e300, 3.141592653589793}) {
    EXPECT_DOUBLE_EQ(parse_double(format_double(v)), v) << v;
  }
}

TEST(StringsTest, ParseI64AcceptsWholeTokenOnly) {
  EXPECT_EQ(parse_i64("42"), 42);
  EXPECT_EQ(parse_i64("-7"), -7);
  EXPECT_EQ(parse_i64("  13  "), 13);  // trimmed
  EXPECT_THROW(parse_i64("42x"), ParseError);
  EXPECT_THROW(parse_i64(""), ParseError);
  EXPECT_THROW(parse_i64("4 2"), ParseError);
  EXPECT_THROW(parse_i64("999999999999999999999999"), ParseError);
}

TEST(StringsTest, ParseI32RejectsOverflow) {
  EXPECT_EQ(parse_i32("2147483647"), 2147483647);
  EXPECT_EQ(parse_i32("-2147483648"), -2147483647 - 1);
  EXPECT_THROW(parse_i32("2147483648"), ParseError);
  EXPECT_THROW(parse_i32("-2147483649"), ParseError);
}

TEST(StringsTest, ParseBoolAcceptsXsdLexicalForms) {
  EXPECT_TRUE(parse_bool("true"));
  EXPECT_TRUE(parse_bool("1"));
  EXPECT_FALSE(parse_bool("false"));
  EXPECT_FALSE(parse_bool("0"));
  EXPECT_TRUE(parse_bool(" true "));
  EXPECT_THROW(parse_bool("TRUE"), ParseError);  // xsd:boolean is lower-case
  EXPECT_THROW(parse_bool("yes"), ParseError);
}

TEST(StringsTest, ToLower) {
  EXPECT_EQ(to_lower("MiXeD-123"), "mixed-123");
}

}  // namespace
}  // namespace wsc::util
