// util::json — the escape helper and the small DOM parser the admin
// endpoints' consumers (cachetop, endpoint tests) rely on.
#include "util/json.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace wsc::util::json {
namespace {

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(escape("plain"), "plain");
  EXPECT_EQ(escape("a\"b"), "a\\\"b");
  EXPECT_EQ(escape("a\\b"), "a\\\\b");
  EXPECT_EQ(escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(escape(std::string("\x01", 1)), "\\u0001");
}

TEST(JsonParseTest, Primitives) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_EQ(parse("true").type, Value::Type::Bool);
  EXPECT_TRUE(parse("true").boolean);
  EXPECT_FALSE(parse("false").boolean);
  EXPECT_DOUBLE_EQ(parse("42").number, 42.0);
  EXPECT_DOUBLE_EQ(parse("-3.5e2").number, -350.0);
  EXPECT_EQ(parse("\"hi\"").string, "hi");
}

TEST(JsonParseTest, StringEscapes) {
  EXPECT_EQ(parse("\"a\\\"b\"").string, "a\"b");
  EXPECT_EQ(parse("\"line1\\nline2\"").string, "line1\nline2");
  EXPECT_EQ(parse("\"\\u0041\"").string, "A");
  EXPECT_EQ(parse("\"\\u00e9\"").string, "\xc3\xa9");  // é as UTF-8
}

TEST(JsonParseTest, NestedStructures) {
  Value doc = parse(R"({
    "name": "cache",
    "ratio": 0.75,
    "tags": [1, 2, 3],
    "inner": {"deep": true}
  })");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.string_or("name"), "cache");
  EXPECT_DOUBLE_EQ(doc.number_or("ratio"), 0.75);
  const Value* tags = doc.find("tags");
  ASSERT_NE(tags, nullptr);
  ASSERT_TRUE(tags->is_array());
  ASSERT_EQ(tags->array.size(), 3u);
  EXPECT_DOUBLE_EQ(tags->array[2].number, 3.0);
  const Value* inner = doc.find("inner");
  ASSERT_NE(inner, nullptr);
  const Value* deep = inner->find("deep");
  ASSERT_NE(deep, nullptr);
  EXPECT_TRUE(deep->boolean);
}

TEST(JsonParseTest, AccessorsHaveSafeFallbacks) {
  Value doc = parse(R"({"n": 1, "s": "x"})");
  EXPECT_DOUBLE_EQ(doc.number_or("missing", -1), -1.0);
  EXPECT_EQ(doc.string_or("missing", "fb"), "fb");
  EXPECT_DOUBLE_EQ(doc.number_or("s", -1), -1.0);  // mistyped -> fallback
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_EQ(parse("[1]").find("anything"), nullptr);  // non-object
}

TEST(JsonParseTest, MalformedInputThrows) {
  EXPECT_THROW(parse(""), ParseError);
  EXPECT_THROW(parse("{"), ParseError);
  EXPECT_THROW(parse("[1,]"), ParseError);
  EXPECT_THROW(parse("{\"a\" 1}"), ParseError);
  EXPECT_THROW(parse("\"unterminated"), ParseError);
  EXPECT_THROW(parse("nul"), ParseError);
  EXPECT_THROW(parse("1 2"), ParseError);  // trailing garbage
}

TEST(JsonParseTest, DepthLimitGuardsRecursion) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  for (int i = 0; i < 100; ++i) deep += "]";
  EXPECT_THROW(parse(deep), ParseError);
  // 32 levels is comfortably inside the limit.
  std::string ok;
  for (int i = 0; i < 32; ++i) ok += "[";
  ok += "1";
  for (int i = 0; i < 32; ++i) ok += "]";
  EXPECT_NO_THROW(parse(ok));
}

TEST(JsonRoundTripTest, EscapedStringsSurviveParsing) {
  const std::string nasty = "quote\" slash\\ newline\n tab\t ctrl\x02";
  Value parsed = parse("\"" + escape(nasty) + "\"");
  EXPECT_EQ(parsed.string, nasty);
}

}  // namespace
}  // namespace wsc::util::json
