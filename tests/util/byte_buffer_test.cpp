#include "util/byte_buffer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace wsc::util {
namespace {

TEST(ByteBufferTest, PrimitivesRoundTrip) {
  ByteWriter w;
  w.write_u8(0xAB);
  w.write_u16(0x1234);
  w.write_u32(0xDEADBEEF);
  w.write_u64(0x0123456789ABCDEFULL);
  w.write_i32(-42);
  w.write_i64(std::numeric_limits<std::int64_t>::min());
  w.write_f64(3.14159265358979);
  w.write_bool(true);
  w.write_bool(false);

  ByteReader r(w.data());
  EXPECT_EQ(r.read_u8(), 0xAB);
  EXPECT_EQ(r.read_u16(), 0x1234);
  EXPECT_EQ(r.read_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.read_u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.read_i32(), -42);
  EXPECT_EQ(r.read_i64(), std::numeric_limits<std::int64_t>::min());
  EXPECT_DOUBLE_EQ(r.read_f64(), 3.14159265358979);
  EXPECT_TRUE(r.read_bool());
  EXPECT_FALSE(r.read_bool());
  EXPECT_TRUE(r.at_end());
}

TEST(ByteBufferTest, FloatSpecialValuesRoundTrip) {
  ByteWriter w;
  w.write_f64(std::numeric_limits<double>::infinity());
  w.write_f64(-std::numeric_limits<double>::infinity());
  w.write_f64(std::numeric_limits<double>::quiet_NaN());
  w.write_f64(-0.0);
  ByteReader r(w.data());
  EXPECT_EQ(r.read_f64(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(r.read_f64(), -std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isnan(r.read_f64()));
  double neg_zero = r.read_f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
}

class VarintRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VarintRoundTrip, RoundTrips) {
  ByteWriter w;
  w.write_varint(GetParam());
  ByteReader r(w.data());
  EXPECT_EQ(r.read_varint(), GetParam());
  EXPECT_TRUE(r.at_end());
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, VarintRoundTrip,
    ::testing::Values(0ULL, 1ULL, 127ULL, 128ULL, 129ULL, 16383ULL, 16384ULL,
                      (1ULL << 32) - 1, 1ULL << 32, (1ULL << 56) + 3,
                      std::numeric_limits<std::uint64_t>::max()));

TEST(ByteBufferTest, VarintEncodingIsMinimalLength) {
  ByteWriter w;
  w.write_varint(127);
  EXPECT_EQ(w.size(), 1u);
  ByteWriter w2;
  w2.write_varint(128);
  EXPECT_EQ(w2.size(), 2u);
}

TEST(ByteBufferTest, StringsAndBytesRoundTrip) {
  ByteWriter w;
  w.write_string("hello \0 world");  // note: literal truncates at NUL
  w.write_string(std::string("embedded\0nul", 12));
  w.write_bytes(std::vector<std::uint8_t>{1, 2, 3});
  ByteReader r(w.data());
  EXPECT_EQ(r.read_string(), "hello ");
  EXPECT_EQ(r.read_string(), std::string("embedded\0nul", 12));
  EXPECT_EQ(r.read_bytes(), (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(ByteBufferTest, UnderflowThrowsParseError) {
  ByteWriter w;
  w.write_u16(7);
  ByteReader r(w.data());
  EXPECT_EQ(r.read_u8(), 7);
  EXPECT_THROW(r.read_u32(), ParseError);
}

TEST(ByteBufferTest, TruncatedStringThrows) {
  ByteWriter w;
  w.write_varint(100);  // claims 100 bytes, provides none
  ByteReader r(w.data());
  EXPECT_THROW(r.read_string(), ParseError);
}

TEST(ByteBufferTest, OverlongVarintThrows) {
  std::vector<std::uint8_t> bad(11, 0x80);  // never terminates within 64 bits
  ByteReader r(bad);
  EXPECT_THROW(r.read_varint(), ParseError);
}

TEST(ByteBufferTest, PositionAndRemainingTrackCursor) {
  ByteWriter w;
  w.write_u32(1);
  w.write_u32(2);
  ByteReader r(w.data());
  EXPECT_EQ(r.remaining(), 8u);
  r.read_u32();
  EXPECT_EQ(r.position(), 4u);
  EXPECT_EQ(r.remaining(), 4u);
  EXPECT_FALSE(r.at_end());
}

TEST(ByteBufferTest, TakeMovesBufferOut) {
  ByteWriter w;
  w.append_raw(std::string_view("abc"));
  std::vector<std::uint8_t> data = w.take();
  EXPECT_EQ(data.size(), 3u);
  EXPECT_EQ(w.size(), 0u);
}

}  // namespace
}  // namespace wsc::util
