// Amazon service: the Table-1 cache-policy demonstration.  Search
// operations cache safely; cart operations MUST bypass the cache or the
// application observes stale carts.
#include "services/amazon/service.hpp"

#include <gtest/gtest.h>

#include "core/client.hpp"
#include "reflect/algorithms.hpp"
#include "transport/inproc_transport.hpp"

namespace wsc::services::amazon {
namespace {

using reflect::Object;
using soap::Parameter;

constexpr const char* kEndpoint = "inproc://amazon/api";

struct AmazonFixture : ::testing::Test {
  void SetUp() override {
    backend = std::make_shared<AmazonBackend>();
    transport = std::make_shared<transport::InProcessTransport>();
    transport->bind(kEndpoint, make_amazon_service(backend));
  }

  cache::CachingServiceClient make_client(cache::CachePolicy policy) {
    cache::CachingServiceClient::Options options;
    options.policy = std::move(policy);
    return cache::CachingServiceClient(transport, amazon_description(),
                                       kEndpoint,
                                       std::make_shared<cache::ResponseCache>(),
                                       options);
  }

  static std::vector<Parameter> search_params(const std::string& q) {
    return {{"key", Object::make(std::string("k"))},
            {"query", Object::make(q)},
            {"page", Object::make(std::int32_t{1})}};
  }

  static std::vector<Parameter> cart_params(const std::string& id) {
    return {{"cartId", Object::make(id)}};
  }

  std::shared_ptr<AmazonBackend> backend;
  std::shared_ptr<transport::InProcessTransport> transport;
};

TEST_F(AmazonFixture, Table1OperationInventory) {
  EXPECT_EQ(search_operations().size(), 20u);
  EXPECT_EQ(cart_operations().size(), 6u);
  auto desc = amazon_description();
  EXPECT_EQ(desc->operations().size(), 26u);
  for (const auto& op : search_operations())
    EXPECT_NE(desc->operation(op), nullptr) << op;
  for (const auto& op : cart_operations())
    EXPECT_NE(desc->operation(op), nullptr) << op;
}

TEST_F(AmazonFixture, DefaultPolicyMatchesPaper) {
  cache::CachePolicy policy = default_amazon_policy();
  for (const auto& op : search_operations())
    EXPECT_TRUE(policy.lookup(op).cacheable) << op;
  for (const auto& op : cart_operations())
    EXPECT_FALSE(policy.lookup(op).cacheable) << op;
}

TEST_F(AmazonFixture, SearchesAreDeterministicAndCacheable) {
  auto client = make_client(default_amazon_policy());
  Object a = client.invoke("KeywordSearch", search_params("book"));
  Object b = client.invoke("KeywordSearch", search_params("book"));
  EXPECT_TRUE(reflect::deep_equals(a, b));
  EXPECT_EQ(client.cache().stats().hits, 1u);
}

TEST_F(AmazonFixture, EverySearchOperationWorksThroughTheStack) {
  auto client = make_client(default_amazon_policy());
  for (const auto& op : search_operations()) {
    Object result = client.invoke(op, search_params("query-for-" + op));
    const auto& r = result.as<AmazonSearchResult>();
    EXPECT_GT(r.totalResults, 0) << op;
    EXPECT_FALSE(r.products.empty()) << op;
  }
}

TEST_F(AmazonFixture, CartLifecycleThroughSoap) {
  auto client = make_client(default_amazon_policy());
  auto add = [&](const std::string& asin, int qty) {
    return client.invoke("AddShoppingCartItems",
                         {{"cartId", Object::make(std::string("c1"))},
                          {"asin", Object::make(asin)},
                          {"quantity", Object::make(std::int32_t{qty})}});
  };
  add("B000000001", 2);
  Object cart_obj = add("B000000002", 1);
  const auto& cart = cart_obj.as<ShoppingCart>();
  EXPECT_EQ(cart.items.size(), 2u);
  EXPECT_GT(cart.subtotal, 0.0);

  client.invoke("RemoveShoppingCartItems",
                {{"cartId", Object::make(std::string("c1"))},
                 {"asin", Object::make(std::string("B000000001"))}});
  Object after = client.invoke("GetShoppingCart", cart_params("c1"));
  EXPECT_EQ(after.as<ShoppingCart>().items.size(), 1u);

  client.invoke("ClearShoppingCart", cart_params("c1"));
  Object cleared = client.invoke("GetShoppingCart", cart_params("c1"));
  EXPECT_TRUE(cleared.as<ShoppingCart>().items.empty());
}

TEST_F(AmazonFixture, CachingCartReadsObservesStaleState) {
  // Misconfiguration demo: an administrator who marks GetShoppingCart
  // cacheable gets exactly the §3.2 consistency failure.
  cache::CachePolicy bad = default_amazon_policy();
  bad.cacheable("GetShoppingCart");
  auto client = make_client(bad);

  client.invoke("GetShoppingCart", cart_params("c2"));  // caches empty cart
  client.invoke("AddShoppingCartItems",
                {{"cartId", Object::make(std::string("c2"))},
                 {"asin", Object::make(std::string("B000000009"))},
                 {"quantity", Object::make(std::int32_t{1})}});
  Object stale = client.invoke("GetShoppingCart", cart_params("c2"));
  EXPECT_TRUE(stale.as<ShoppingCart>().items.empty()) << "served stale cart";

  // With the paper's policy the same sequence is correct.
  auto good_client = make_client(default_amazon_policy());
  good_client.invoke("GetShoppingCart", cart_params("c3"));
  good_client.invoke("AddShoppingCartItems",
                     {{"cartId", Object::make(std::string("c3"))},
                      {"asin", Object::make(std::string("B000000009"))},
                      {"quantity", Object::make(std::int32_t{1})}});
  Object fresh = good_client.invoke("GetShoppingCart", cart_params("c3"));
  EXPECT_EQ(fresh.as<ShoppingCart>().items.size(), 1u);
}

TEST_F(AmazonFixture, ModifyAndZeroQuantityRemoves) {
  backend->add_items("m1", "A", 2);
  ShoppingCart cart = backend->modify_items("m1", "A", 5);
  EXPECT_EQ(cart.items[0].quantity, 5);
  cart = backend->modify_items("m1", "A", 0);
  EXPECT_TRUE(cart.items.empty());
}

TEST_F(AmazonFixture, AddMergesDuplicateAsins) {
  backend->add_items("m2", "A", 1);
  ShoppingCart cart = backend->add_items("m2", "A", 3);
  ASSERT_EQ(cart.items.size(), 1u);
  EXPECT_EQ(cart.items[0].quantity, 4);
}

TEST_F(AmazonFixture, SubtotalTracksContents) {
  ShoppingCart cart = backend->add_items("m3", "A", 2);
  double unit = cart.items[0].unitPrice;
  EXPECT_DOUBLE_EQ(cart.subtotal, unit * 2);
  cart = backend->clear_cart("m3");
  EXPECT_DOUBLE_EQ(cart.subtotal, 0.0);
}

TEST_F(AmazonFixture, TransactionDetailsDeterministic) {
  auto client = make_client(default_amazon_policy());
  Object a = client.invoke("GetTransactionDetails",
                           {{"transactionId", Object::make(std::string("t9"))}});
  EXPECT_EQ(a.as<TransactionDetails>().transactionId, "t9");
  EXPECT_GT(a.as<TransactionDetails>().total, 0.0);
}

}  // namespace
}  // namespace wsc::services::amazon
