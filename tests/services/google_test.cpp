// Dummy Google service: Table 5 contract shapes and deterministic backend.
#include "services/google/service.hpp"

#include <gtest/gtest.h>

#include "reflect/algorithms.hpp"
#include "reflect/serialize.hpp"
#include "services/google/stub.hpp"
#include "soap/serializer.hpp"
#include "transport/inproc_transport.hpp"

namespace wsc::services::google {
namespace {

using reflect::Object;

TEST(GoogleTypesTest, Table5ShapesMatchPaper) {
  const reflect::TypeInfo& gsr = ensure_google_types();
  // "The GoogleSearchResult object has eleven fields."
  EXPECT_EQ(gsr.fields.size(), 11u);
  int simple = 0, arrays = 0;
  for (const auto& f : gsr.fields) {
    if (f.type->is_array()) ++arrays;
    if (f.type->is_primitive()) ++simple;
  }
  // "Nine fields are simple types ... one field refers to the array of
  // ResultElement objects and the last field refers to the array of
  // DirectoryCategory objects."
  EXPECT_EQ(simple, 9);
  EXPECT_EQ(arrays, 2);

  // "The ResultElement object has ten fields, nine simple types and one
  // DirectoryCategory."
  const reflect::TypeInfo& re = reflect::type_of<ResultElement>();
  EXPECT_EQ(re.fields.size(), 10u);
  // "The DirectoryCategory object has two String fields."
  const reflect::TypeInfo& dc = reflect::type_of<DirectoryCategory>();
  EXPECT_EQ(dc.fields.size(), 2u);
  EXPECT_EQ(dc.fields[0].type, &reflect::type_of<std::string>());
}

TEST(GoogleTypesTest, GeneratedTraits) {
  const reflect::TypeInfo& gsr = ensure_google_types();
  // "The generated classes are serializable and bean-type" + added clone.
  EXPECT_TRUE(gsr.traits.serializable);
  EXPECT_TRUE(gsr.traits.bean);
  EXPECT_TRUE(gsr.traits.cloneable);
  EXPECT_TRUE(gsr.is_deeply_serializable());
  EXPECT_TRUE(gsr.is_reflectable());
}

TEST(GoogleDescriptionTest, OperationSignaturesMatchTable5) {
  auto desc = google_description();
  const auto& spell = desc->require_operation("doSpellingSuggestion");
  EXPECT_EQ(spell.params.size(), 2u);  // String x2
  EXPECT_EQ(spell.result_type, &reflect::type_of<std::string>());

  const auto& page = desc->require_operation("doGetCachedPage");
  EXPECT_EQ(page.params.size(), 2u);  // String x2
  EXPECT_EQ(page.result_type, &reflect::type_of<std::vector<std::uint8_t>>());

  const auto& search = desc->require_operation("doGoogleSearch");
  ASSERT_EQ(search.params.size(), 10u);  // String x6, int x2, boolean x2
  int strings = 0, ints = 0, bools = 0;
  for (const auto& p : search.params) {
    if (p.type == &reflect::type_of<std::string>()) ++strings;
    if (p.type == &reflect::type_of<std::int32_t>()) ++ints;
    if (p.type == &reflect::type_of<bool>()) ++bools;
  }
  EXPECT_EQ(strings, 6);
  EXPECT_EQ(ints, 2);
  EXPECT_EQ(bools, 2);
  EXPECT_EQ(search.result_type, &reflect::type_of<GoogleSearchResult>());
}

TEST(GoogleBackendTest, DeterministicResponses) {
  GoogleBackend backend;
  EXPECT_EQ(backend.spelling_suggestion("foo bar"),
            backend.spelling_suggestion("foo bar"));
  EXPECT_EQ(backend.cached_page("http://a"), backend.cached_page("http://a"));
  GoogleSearchResult r1 = backend.search("q", 0, 10);
  GoogleSearchResult r2 = backend.search("q", 0, 10);
  EXPECT_EQ(r1, r2);
  EXPECT_NE(backend.search("q1", 0, 10), backend.search("q2", 0, 10));
}

TEST(GoogleBackendTest, SpellingSuggestionTitleCases) {
  GoogleBackend backend;
  EXPECT_EQ(backend.spelling_suggestion("web servies caching"),
            "Web Servies Caching");
  // Whitespace is normalized: runs collapse, leading space dropped.
  EXPECT_EQ(backend.spelling_suggestion("  double  spaces "),
            "Double Spaces ");
}

TEST(GoogleBackendTest, VersionChangesResponses) {
  GoogleBackend backend;
  auto before = backend.search("q", 0, 10);
  auto page_before = backend.cached_page("u");
  backend.set_version(1);
  EXPECT_NE(backend.search("q", 0, 10), before);
  EXPECT_NE(backend.cached_page("u"), page_before);
  EXPECT_NE(backend.spelling_suggestion("x").find("rev 1"), std::string::npos);
}

TEST(GoogleBackendTest, CachedPageSizeConfigurable) {
  GoogleBackend::Config config;
  config.cached_page_bytes = 1234;
  GoogleBackend backend(config);
  EXPECT_EQ(backend.cached_page("http://x").size(), 1234u);
}

TEST(GoogleBackendTest, SearchRespectsPaging) {
  GoogleBackend backend;
  GoogleSearchResult r = backend.search("q", 20, 5);
  EXPECT_EQ(r.resultElements.size(), 5u);
  EXPECT_EQ(r.startIndex, 21);
  EXPECT_EQ(r.endIndex, 25);
  EXPECT_EQ(r.resultElements[0].indexInSeries, 21);
  EXPECT_EQ(backend.search("q", 0, 0).resultElements.size(), 0u);
  // max_results above the page cap clamps to the configured page size.
  EXPECT_EQ(backend.search("q", 0, 999).resultElements.size(), 10u);
}

TEST(GoogleBackendTest, SearchResponseXmlSizeInTable9Ballpark) {
  // Table 9: GoogleSearch response XML ~5 KB.
  GoogleBackend backend;
  auto desc = google_description();
  std::string xml = soap::serialize_response(
      desc->require_operation("doGoogleSearch"), "urn:GoogleSearch",
      Object::make(backend.search("distributed caching", 0, 10)));
  EXPECT_GT(xml.size(), 3000u);
  EXPECT_LT(xml.size(), 9000u);
}

TEST(GoogleBackendTest, CachedPageResponseXmlSizeInTable9Ballpark) {
  // Table 9: CachedPage response XML ~5.3 KB (Base64 of ~3.6 KB page).
  GoogleBackend backend;
  auto desc = google_description();
  std::string xml = soap::serialize_response(
      desc->require_operation("doGetCachedPage"), "urn:GoogleSearch",
      Object::make(backend.cached_page("http://example.com")));
  EXPECT_GT(xml.size(), 4500u);
  EXPECT_LT(xml.size(), 6500u);
}

TEST(GoogleStubTest, TypedCallsThroughMiddleware) {
  auto backend = std::make_shared<GoogleBackend>();
  auto transport = std::make_shared<transport::InProcessTransport>();
  transport->bind("inproc://google/api", make_google_service(backend));

  cache::CachingServiceClient::Options options;
  options.policy = default_google_policy();
  GoogleClient client(transport, "inproc://google/api",
                      std::make_shared<cache::ResponseCache>(), options);

  EXPECT_EQ(client.doSpellingSuggestion("hello world"), "Hello World");
  EXPECT_EQ(client.doGetCachedPage("http://x").size(), 3600u);
  GoogleSearchResult r = client.doGoogleSearch("caching");
  EXPECT_EQ(r.searchQuery, "caching");
  EXPECT_EQ(r.resultElements.size(), 10u);

  // Second round: all hits.
  client.doSpellingSuggestion("hello world");
  client.doGetCachedPage("http://x");
  client.doGoogleSearch("caching");
  EXPECT_EQ(client.middleware().cache().stats().hits, 3u);
}

TEST(GoogleStubTest, DefaultPolicyCoversAllOperations) {
  cache::CachePolicy policy = default_google_policy();
  for (const char* op :
       {"doSpellingSuggestion", "doGetCachedPage", "doGoogleSearch"}) {
    EXPECT_TRUE(policy.lookup(op).cacheable) << op;
    EXPECT_EQ(policy.lookup(op).ttl, std::chrono::hours(1)) << op;
  }
}

}  // namespace
}  // namespace wsc::services::google
