// Quote + news backends: per-service TTL configuration on one shared
// cache — the paper-intro portal's backend mix.
#include <gtest/gtest.h>

#include "core/client.hpp"
#include "reflect/algorithms.hpp"
#include "services/news/service.hpp"
#include "services/quotes/service.hpp"
#include "transport/inproc_transport.hpp"

namespace wsc::services {
namespace {

using reflect::Object;
using soap::Parameter;

TEST(QuotesServiceTest, ContractShape) {
  auto desc = quotes::quotes_description();
  EXPECT_EQ(desc->operations().size(), 2u);
  EXPECT_EQ(desc->require_operation("GetQuote").result_type,
            &reflect::type_of<quotes::Quote>());
}

TEST(QuotesServiceTest, DeterministicUntilTick) {
  quotes::QuoteBackend backend;
  quotes::Quote a = backend.quote("IBM");
  quotes::Quote b = backend.quote("IBM");
  EXPECT_EQ(a, b);
  EXPECT_GT(a.last, 0.0);
  backend.tick();
  EXPECT_NE(backend.quote("IBM"), a);
  EXPECT_NE(backend.quote("IBM").symbol, "");
}

TEST(QuotesServiceTest, BatchSplitsCsv) {
  quotes::QuoteBackend backend;
  quotes::QuoteBatch batch = backend.quotes("IBM, MSFT ,GOOG,,");
  ASSERT_EQ(batch.quotes.size(), 3u);
  EXPECT_EQ(batch.quotes[1].symbol, "MSFT");
}

TEST(NewsServiceTest, FeedShapeAndEditioning) {
  news::NewsBackend backend;
  news::NewsFeed feed = backend.top_headlines("caching", 7);
  EXPECT_EQ(feed.topic, "caching");
  EXPECT_EQ(feed.headlines.size(), 7u);
  EXPECT_EQ(feed, backend.top_headlines("caching", 7));
  backend.publish();
  EXPECT_NE(feed, backend.top_headlines("caching", 7));
  // Count clamping.
  EXPECT_TRUE(backend.top_headlines("x", -3).headlines.empty());
  EXPECT_EQ(backend.top_headlines("x", 999).headlines.size(), 50u);
}

TEST(FeedsIntegrationTest, PerServiceTtlsOnOneSharedCache) {
  // Quote entries must expire fast while news entries live on — exactly
  // the §3.2 "depends on the service's semantics" configuration.
  auto clock = std::make_shared<util::ManualClock>();
  auto shared_cache = std::make_shared<cache::ResponseCache>(
      cache::ResponseCache::Config{}, *clock);
  auto transport = std::make_shared<transport::InProcessTransport>();
  auto quote_backend = std::make_shared<quotes::QuoteBackend>();
  auto news_backend = std::make_shared<news::NewsBackend>();
  transport->bind("inproc://svc/quotes", quotes::make_quotes_service(quote_backend));
  transport->bind("inproc://svc/news", news::make_news_service(news_backend));

  cache::CachingServiceClient::Options quote_options;
  quote_options.policy = quotes::default_quotes_policy(std::chrono::seconds(5));
  cache::CachingServiceClient quote_client(transport, quotes::quotes_description(),
                                           "inproc://svc/quotes", shared_cache,
                                           quote_options);
  cache::CachingServiceClient::Options news_options;
  news_options.policy = news::default_news_policy(std::chrono::minutes(5));
  cache::CachingServiceClient news_client(transport, news::news_description(),
                                          "inproc://svc/news", shared_cache,
                                          news_options);

  auto get_quote = [&] {
    return quote_client.invoke("GetQuote",
                               {{"symbol", Object::make(std::string("IBM"))}});
  };
  auto get_news = [&] {
    return news_client.invoke("TopHeadlines",
                              {{"topic", Object::make(std::string("tech"))},
                               {"count", Object::make(std::int32_t{5})}});
  };

  Object quote1 = get_quote();
  Object news1 = get_news();
  EXPECT_EQ(shared_cache->entry_count(), 2u);

  // Source data changes; within TTLs both reads stay cached (stale quotes
  // for up to 5s is the administrator's accepted staleness).
  quote_backend->tick();
  news_backend->publish();
  EXPECT_TRUE(reflect::deep_equals(get_quote(), quote1));
  EXPECT_TRUE(reflect::deep_equals(get_news(), news1));

  // After 10 s the quote entry expired but the news entry has not.
  clock->advance(std::chrono::seconds(10));
  EXPECT_FALSE(reflect::deep_equals(get_quote(), quote1));
  EXPECT_TRUE(reflect::deep_equals(get_news(), news1));

  // After 10 min the news expires too.
  clock->advance(std::chrono::minutes(10));
  EXPECT_FALSE(reflect::deep_equals(get_news(), news1));
}

TEST(FeedsIntegrationTest, AutoRepresentationForFeedTypes) {
  // Both result types are generated-style beans: §6 picks reflection copy.
  quotes::ensure_quote_types();
  news::ensure_news_types();
  EXPECT_EQ(cache::auto_select(reflect::type_of<quotes::Quote>(), false),
            cache::Representation::ReflectionCopy);
  EXPECT_EQ(cache::auto_select(reflect::type_of<news::NewsFeed>(), false),
            cache::Representation::ReflectionCopy);
}

}  // namespace
}  // namespace wsc::services
