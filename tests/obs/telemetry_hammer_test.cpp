// Concurrency hammers for the telemetry hot structures — small iteration
// counts, designed to run under tsan (the "obs" label is in the tsan CI
// job's filter): windowed counters, the event ring, the cost-profile
// registry, and hot-key tracking on the live cache lookup path.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/cache_key.hpp"
#include "core/response_cache.hpp"
#include "reflect/object.hpp"
#include "obs/events.hpp"
#include "obs/profiles.hpp"
#include "obs/windowed.hpp"

namespace wsc {
namespace {

constexpr int kThreads = 4;

class TinyValue final : public cache::CachedValue {
 public:
  reflect::Object retrieve() const override {
    return reflect::Object::make(std::int32_t{1});
  }
  cache::Representation representation() const override {
    return cache::Representation::Reference;
  }
  std::size_t memory_size() const override { return 16; }
};

void run_threads(const std::function<void(int)>& body) {
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) pool.emplace_back(body, t);
  for (auto& th : pool) th.join();
}

TEST(TelemetryHammerTest, WindowedCounterConcurrentInc) {
  obs::WindowedCounter counter;
  constexpr int kOps = 5000;
  run_threads([&](int) {
    for (int i = 0; i < kOps; ++i) {
      counter.inc();
      if (i % 64 == 0) (void)counter.windowed();  // readers race writers
    }
  });
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads) * kOps);
  // The window may have lost a bounded number of increments at rotation
  // edges but can never exceed the exact total.
  EXPECT_LE(counter.windowed(), counter.value());
}

TEST(TelemetryHammerTest, WindowedSummaryConcurrentRecord) {
  obs::WindowedSummary summary;
  constexpr int kOps = 2000;
  run_threads([&](int t) {
    for (int i = 0; i < kOps; ++i) {
      summary.record(static_cast<std::uint64_t>(t) * 1000 + i);
      if (i % 128 == 0) (void)summary.windowed_snapshot();
    }
  });
  EXPECT_EQ(summary.snapshot().count(),
            static_cast<std::uint64_t>(kThreads) * kOps);
}

TEST(TelemetryHammerTest, EventLogConcurrentEmitAndSnapshot) {
  obs::EventLog log(64);
  constexpr int kOps = 500;
  run_threads([&](int t) {
    for (int i = 0; i < kOps; ++i) {
      log.emit(obs::EventKind::SlowCall, "hammer",
               "thread " + std::to_string(t), static_cast<std::uint64_t>(i));
      if (i % 32 == 0) (void)log.snapshot();
      if (i % 64 == 0) (void)log.json(16);
    }
  });
  EXPECT_EQ(log.total_emitted(), static_cast<std::uint64_t>(kThreads) * kOps);
  EXPECT_EQ(log.count(obs::EventKind::SlowCall),
            static_cast<std::uint64_t>(kThreads) * kOps);
  EXPECT_EQ(log.snapshot().size(), 64u);  // ring stays exactly full
}

TEST(TelemetryHammerTest, CostProfilesConcurrentFeedAndScrape) {
  obs::CostProfiles profiles;
  constexpr int kOps = 1000;
  run_threads([&](int t) {
    const std::string op = "op" + std::to_string(t % 2);
    for (int i = 0; i < kOps; ++i) {
      if (i % 3 == 0)
        profiles.record_miss("Svc", op, "XML message", 100, 50, 32);
      else
        profiles.record_hit("Svc", op, "XML message", 75);
      if (i % 100 == 0) (void)profiles.snapshot();
    }
  });
  std::uint64_t hits = 0, misses = 0;
  for (const auto& row : profiles.snapshot()) {
    hits += row.hits;
    misses += row.misses;
  }
  EXPECT_EQ(hits + misses, static_cast<std::uint64_t>(kThreads) * kOps);
}

TEST(TelemetryHammerTest, HotKeyTrackingOnLiveLookups) {
  cache::ResponseCache cache;
  cache.enable_hot_key_tracking({/*capacity=*/16, /*sample_every=*/1});
  std::vector<cache::CacheKey> keys;
  for (int k = 0; k < 8; ++k) {
    keys.emplace_back("key" + std::to_string(k));
    cache.store(keys.back(), std::make_shared<TinyValue>(),
                std::chrono::hours(1));
  }
  constexpr int kOps = 2000;
  run_threads([&](int t) {
    for (int i = 0; i < kOps; ++i) {
      (void)cache.lookup(keys[(t + i) % keys.size()]);
      if (i % 256 == 0) (void)cache.hot_keys(8);
    }
  });
  std::vector<obs::TopKSketch::HotKey> hot = cache.hot_keys(8);
  ASSERT_FALSE(hot.empty());
  std::uint64_t total = 0;
  for (const auto& h : hot) total += h.count;
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * kOps);
}

}  // namespace
}  // namespace wsc
