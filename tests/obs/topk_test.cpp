// Space-saving top-K sketch: exactness under capacity, the Misra-Gries
// error bound under an adversarial stream, the heavy-hitter guarantee,
// weighted offers, and the disjoint-stream merge.
#include "obs/topk.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>

namespace wsc::obs {
namespace {

TEST(TopKSketchTest, ExactWhileUnderCapacity) {
  TopKSketch sketch(8);
  for (int i = 0; i < 5; ++i)
    for (int n = 0; n <= i; ++n) sketch.offer("k" + std::to_string(i));

  std::vector<TopKSketch::HotKey> entries = sketch.entries();
  ASSERT_EQ(entries.size(), 5u);
  EXPECT_EQ(entries[0].key, "k4");
  EXPECT_EQ(entries[0].count, 5u);
  for (const auto& e : entries) EXPECT_EQ(e.error, 0u) << e.key;
  EXPECT_EQ(sketch.observed(), 1u + 2 + 3 + 4 + 5);
}

TEST(TopKSketchTest, AdversarialStreamStaysWithinErrorBound) {
  // 4 heavy keys + a rotating long tail designed to keep evicting table
  // entries.  For every tracked key: count - error <= true <= count.
  TopKSketch sketch(8);
  std::map<std::string, std::uint64_t> truth;
  auto offer = [&](const std::string& k) {
    sketch.offer(k);
    ++truth[k];
  };
  for (int round = 0; round < 200; ++round) {
    for (int h = 0; h < 4; ++h) offer("heavy" + std::to_string(h));
    offer("tail" + std::to_string(round % 50));
  }
  for (const TopKSketch::HotKey& e : sketch.entries()) {
    const std::uint64_t real = truth[e.key];
    EXPECT_LE(real, e.count) << e.key;
    EXPECT_GE(real, e.count - e.error) << e.key;
  }
}

TEST(TopKSketchTest, HeavyHittersAreAlwaysTracked) {
  // Any key with true frequency > W/capacity must be in the table; here
  // "hog" is ~1/3 of the stream against capacity 8 (threshold 1/8).
  TopKSketch sketch(8);
  for (int i = 0; i < 300; ++i) {
    sketch.offer("hog");
    sketch.offer("noise" + std::to_string(i % 100));
    sketch.offer("noise" + std::to_string((i * 7) % 100));
  }
  std::vector<TopKSketch::HotKey> entries = sketch.entries();
  ASSERT_FALSE(entries.empty());
  EXPECT_EQ(entries[0].key, "hog");
  EXPECT_GE(entries[0].count, 300u);
}

TEST(TopKSketchTest, WeightedOffersCountAsWeight) {
  TopKSketch sketch(4);
  sketch.offer("sampled", 64);
  sketch.offer("sampled", 64);
  sketch.offer("rare");
  std::vector<TopKSketch::HotKey> entries = sketch.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].key, "sampled");
  EXPECT_EQ(entries[0].count, 128u);
  EXPECT_EQ(sketch.observed(), 129u);
}

TEST(TopKSketchTest, MergeDisjointShardsSortsAndTruncates) {
  TopKSketch a(4), b(4);
  a.offer("alpha", 10);
  a.offer("beta", 3);
  b.offer("gamma", 7);
  b.offer("delta", 1);
  std::vector<TopKSketch::HotKey> merged =
      merge_topk({a.entries(), b.entries()}, 3);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].key, "alpha");
  EXPECT_EQ(merged[1].key, "gamma");
  EXPECT_EQ(merged[2].key, "beta");
}

}  // namespace
}  // namespace wsc::obs
