// Tracer / CallTrace / StageTimer mechanics.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace wsc::obs {
namespace {

TEST(TraceTest, DisabledTracerRecordsNothing) {
  Tracer tracer;
  ASSERT_FALSE(tracer.enabled());
  {
    CallTrace trace(tracer, "svc", "op");
    EXPECT_FALSE(trace.active());
    trace.set_outcome(Outcome::Hit);
    trace.add_stage(Stage::KeyGen, 100);  // no-op while inactive
    EXPECT_EQ(trace.stage_ns(Stage::KeyGen), 0u);
  }
  TraceSummary summary = tracer.snapshot();
  EXPECT_TRUE(summary.groups.empty());
  EXPECT_TRUE(summary.exemplars.empty());
}

TEST(TraceTest, RecordsStagesLabelsAndOutcome) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.set_sample_every(1);
  {
    CallTrace trace(tracer, "svc", "op");
    ASSERT_TRUE(trace.active());
    trace.set_representation("XML message");
    trace.set_outcome(Outcome::Hit);
    trace.add_stage(Stage::KeyGen, 100);
    trace.add_stage(Stage::Lookup, 200);
    trace.add_stage(Stage::Retrieve, 300);
    EXPECT_EQ(trace.stage_ns(Stage::Lookup), 200u);
  }
  TraceSummary summary = tracer.snapshot();
  ASSERT_EQ(summary.groups.size(), 1u);
  const GroupSummary& g = summary.groups[0];
  EXPECT_EQ(g.labels.service, "svc");
  EXPECT_EQ(g.labels.operation, "op");
  EXPECT_EQ(g.labels.representation, "XML message");
  EXPECT_EQ(g.labels.outcome, Outcome::Hit);
  EXPECT_EQ(g.calls, 1u);
  EXPECT_EQ(g.stage(Stage::KeyGen).sum_ns, 100u);
  EXPECT_EQ(g.stage(Stage::Lookup).sum_ns, 200u);
  EXPECT_EQ(g.stage(Stage::Retrieve).sum_ns, 300u);
  EXPECT_GT(g.total_sum_ns, 0u);

  ASSERT_EQ(summary.exemplars.size(), 1u);
  EXPECT_EQ(summary.exemplars[0].stage(Stage::Lookup), 200u);
  EXPECT_EQ(summary.exemplars[0].stage_sum(), 600u);
}

TEST(TraceTest, GroupsSplitByOutcomeAndRepresentation) {
  Tracer tracer;
  tracer.set_enabled(true);
  for (int i = 0; i < 3; ++i) {
    CallTrace trace(tracer, "svc", "op");
    trace.set_representation("A");
    trace.set_outcome(Outcome::Hit);
  }
  {
    CallTrace trace(tracer, "svc", "op");
    trace.set_representation("A");
    trace.set_outcome(Outcome::Miss);
  }
  {
    CallTrace trace(tracer, "svc", "op");
    trace.set_representation("B");
    trace.set_outcome(Outcome::Hit);
  }
  TraceSummary summary = tracer.snapshot();
  EXPECT_EQ(summary.groups.size(), 3u);
  const GroupSummary* hit_a = summary.find("op", Outcome::Hit, "A");
  ASSERT_NE(hit_a, nullptr);
  EXPECT_EQ(hit_a->calls, 3u);
  ASSERT_NE(summary.find("op", Outcome::Miss, "A"), nullptr);
  ASSERT_NE(summary.find("op", Outcome::Hit, "B"), nullptr);
  EXPECT_EQ(summary.find("op", Outcome::Revalidated, "A"), nullptr);
}

TEST(TraceTest, StageTimerAttributesToCurrentCall) {
  Tracer tracer;
  tracer.set_enabled(true);
  EXPECT_EQ(current_call(), nullptr);
  {
    CallTrace trace(tracer, "svc", "op");
    EXPECT_EQ(current_call(), &trace);
    {
      // Unbound form: how transports deep in the stack attribute time.
      StageTimer timer(Stage::Backoff);
    }
    EXPECT_GT(trace.stage_ns(Stage::Backoff), 0u);
  }
  EXPECT_EQ(current_call(), nullptr);
}

TEST(TraceTest, NestedCallTraceRestoresOuter) {
  Tracer tracer;
  tracer.set_enabled(true);
  CallTrace outer(tracer, "svc", "outer");
  {
    CallTrace inner(tracer, "svc", "inner");
    EXPECT_EQ(current_call(), &inner);
  }
  EXPECT_EQ(current_call(), &outer);
}

TEST(TraceTest, ExemplarRingOverwritesOldestAndCountsDrops) {
  Tracer tracer(/*ring_capacity=*/4);
  tracer.set_enabled(true);
  tracer.set_sample_every(1);
  for (int i = 0; i < 10; ++i) {
    CallTrace trace(tracer, "svc", "op");
    trace.add_stage(Stage::KeyGen, static_cast<std::uint64_t>(i + 1));
  }
  TraceSummary summary = tracer.snapshot();
  ASSERT_EQ(summary.exemplars.size(), 4u);
  EXPECT_EQ(summary.dropped_exemplars, 6u);
  // Oldest-first order of the survivors: calls 7..10.
  EXPECT_EQ(summary.exemplars.front().stage(Stage::KeyGen), 7u);
  EXPECT_EQ(summary.exemplars.back().stage(Stage::KeyGen), 10u);
}

TEST(TraceTest, SampleEveryKeepsEveryNth) {
  Tracer tracer(/*ring_capacity=*/64);
  tracer.set_enabled(true);
  tracer.set_sample_every(4);
  for (int i = 0; i < 16; ++i) CallTrace trace(tracer, "svc", "op");
  TraceSummary summary = tracer.snapshot();
  EXPECT_EQ(summary.exemplars.size(), 4u);
  const GroupSummary* g = summary.find("op", Outcome::Error);
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->calls, 16u);  // aggregates still see every call
}

TEST(TraceTest, SnapshotMergesThreadsAndSurvivesThreadExit) {
  Tracer tracer;
  tracer.set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kCalls = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kCalls; ++i) {
        CallTrace trace(tracer, "svc", "op");
        trace.set_outcome(Outcome::Hit);
        trace.add_stage(Stage::Lookup, 10);
      }
    });
  }
  for (auto& t : threads) t.join();  // states must outlive their threads
  TraceSummary summary = tracer.snapshot();
  const GroupSummary* g = summary.find("op", Outcome::Hit);
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->calls, static_cast<std::uint64_t>(kThreads * kCalls));
  EXPECT_EQ(g->stage(Stage::Lookup).sum_ns,
            static_cast<std::uint64_t>(kThreads * kCalls) * 10u);
  EXPECT_EQ(g->total_hist.count(), static_cast<std::uint64_t>(kThreads * kCalls));
}

TEST(TraceTest, ResetDropsEverything) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.set_sample_every(1);
  { CallTrace trace(tracer, "svc", "op"); }
  tracer.reset();
  TraceSummary summary = tracer.snapshot();
  EXPECT_TRUE(summary.groups.empty());
  EXPECT_TRUE(summary.exemplars.empty());
  EXPECT_EQ(summary.dropped_exemplars, 0u);
  // The thread still publishes into the same tracer after a reset.
  { CallTrace trace(tracer, "svc", "op"); }
  EXPECT_EQ(tracer.snapshot().groups.size(), 1u);
}

TEST(TraceTest, TwoTracersOnOneThreadDoNotCollide) {
  Tracer a, b;
  a.set_enabled(true);
  b.set_enabled(true);
  { CallTrace trace(a, "svc", "op_a"); }
  { CallTrace trace(b, "svc", "op_b"); }
  ASSERT_EQ(a.snapshot().groups.size(), 1u);
  ASSERT_EQ(b.snapshot().groups.size(), 1u);
  EXPECT_EQ(a.snapshot().groups[0].labels.operation, "op_a");
  EXPECT_EQ(b.snapshot().groups[0].labels.operation, "op_b");
}

TEST(TraceTest, StageAndOutcomeNamesAreStable) {
  EXPECT_EQ(stage_name(Stage::KeyGen), "keygen");
  EXPECT_EQ(stage_name(Stage::Wire), "wire");
  EXPECT_EQ(outcome_name(Outcome::Hit), "hit");
  EXPECT_EQ(outcome_name(Outcome::StaleServe), "stale_serve");
}

}  // namespace
}  // namespace wsc::obs
