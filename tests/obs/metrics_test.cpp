// MetricsRegistry instruments, exporters (golden text), and the
// exposition-format validator.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include "obs/promcheck.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace wsc::obs {
namespace {

TEST(MetricsTest, CounterIncrementsAndDedupes) {
  MetricsRegistry registry;
  Counter& c = registry.counter("wsc_test_total", "help", {{"op", "a"}});
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
  // Same (name, labels) returns the same instrument...
  Counter& again = registry.counter("wsc_test_total", "help", {{"op", "a"}});
  EXPECT_EQ(&again, &c);
  // ...different labels a distinct one.
  Counter& other = registry.counter("wsc_test_total", "help", {{"op", "b"}});
  EXPECT_NE(&other, &c);
  EXPECT_EQ(other.value(), 0u);
}

TEST(MetricsTest, KindMismatchThrows) {
  MetricsRegistry registry;
  registry.counter("wsc_test_total", "help");
  EXPECT_THROW(registry.summary("wsc_test_total", "help"), Error);
  EXPECT_THROW(registry.gauge_fn("wsc_test_total", "help", {}, [] { return 0.0; }),
               Error);
}

TEST(MetricsTest, InvalidNamesAndLabelsThrow) {
  MetricsRegistry registry;
  EXPECT_THROW(registry.counter("1bad", "help"), Error);
  EXPECT_THROW(registry.counter("has space", "help"), Error);
  EXPECT_THROW(registry.counter("wsc_ok", "help", {{"bad-label", "v"}}), Error);
  EXPECT_TRUE(valid_metric_name("wsc_ok:sub"));
  EXPECT_FALSE(valid_metric_name(""));
}

TEST(MetricsTest, EscapeLabelValue) {
  EXPECT_EQ(escape_label_value("plain"), "plain");
  EXPECT_EQ(escape_label_value("a\"b"), "a\\\"b");
  EXPECT_EQ(escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(escape_label_value("a\nb"), "a\\nb");
}

TEST(MetricsTest, PrometheusTextGolden) {
  MetricsRegistry registry;
  registry.counter("wsc_requests_total", "Requests served.", {{"op", "a"}})
      .inc(3);
  registry.gauge_fn("wsc_temperature", "Current reading.", {},
                    [] { return 21.5; });
  std::string text = registry.prometheus_text();
  // Owned counters export a windowed gauge twin ("_last60s") next to the
  // lifetime total; callback gauges have no history and export no twin.
  EXPECT_EQ(text,
            "# HELP wsc_requests_last60s Requests served. (60s window)\n"
            "# TYPE wsc_requests_last60s gauge\n"
            "wsc_requests_last60s{op=\"a\"} 3\n"
            "# HELP wsc_requests_total Requests served.\n"
            "# TYPE wsc_requests_total counter\n"
            "wsc_requests_total{op=\"a\"} 3\n"
            "# HELP wsc_temperature Current reading.\n"
            "# TYPE wsc_temperature gauge\n"
            "wsc_temperature 21.5\n");
  EXPECT_EQ(validate_prometheus_text(text), std::nullopt);
}

TEST(MetricsTest, SummaryExportsQuantilesSumCount) {
  MetricsRegistry registry;
  Summary& s = registry.summary("wsc_latency_ns", "Latency.", {});
  for (std::uint64_t v = 1; v <= 10; ++v) s.record(v);
  std::string text = registry.prometheus_text();
  EXPECT_NE(text.find("# TYPE wsc_latency_ns summary\n"), std::string::npos);
  EXPECT_NE(text.find("wsc_latency_ns{quantile=\"0.5\"} "), std::string::npos);
  EXPECT_NE(text.find("wsc_latency_ns{quantile=\"0.99\"} "), std::string::npos);
  EXPECT_NE(text.find("wsc_latency_ns{quantile=\"0.999\"} "),
            std::string::npos);
  EXPECT_NE(text.find("wsc_latency_ns_sum 55\n"), std::string::npos);
  EXPECT_NE(text.find("wsc_latency_ns_count 10\n"), std::string::npos);
  // The windowed twin summary carries the same fresh data right after
  // recording (everything is inside the current window).
  EXPECT_NE(text.find("# TYPE wsc_latency_ns_last60s summary\n"),
            std::string::npos);
  EXPECT_NE(text.find("wsc_latency_ns_last60s_count 10\n"), std::string::npos);
  EXPECT_EQ(validate_prometheus_text(text), std::nullopt);
}

TEST(MetricsTest, JsonTextGolden) {
  MetricsRegistry registry;
  registry.counter("wsc_requests_total", "Requests served.", {{"op", "a"}})
      .inc(3);
  EXPECT_EQ(registry.json_text(),
            "{\n"
            "  \"wsc_requests_last60s\": {\"type\": \"gauge\", \"samples\": [\n"
            "    {\"name\": \"wsc_requests_last60s\", \"labels\": "
            "{\"op\": \"a\"}, \"value\": 3}\n"
            "  ]},\n"
            "  \"wsc_requests_total\": {\"type\": \"counter\", \"samples\": [\n"
            "    {\"name\": \"wsc_requests_total\", \"labels\": "
            "{\"op\": \"a\"}, \"value\": 3}\n"
            "  ]}\n"
            "}\n");
}

TEST(MetricsTest, CollectorSamplesFoldIntoDeclaredFamilies) {
  MetricsRegistry registry;
  registry.family("wsc_snap_total", "Snapshot counter.",
                  MetricsRegistry::Kind::Counter);
  registry.family("wsc_snap_ns", "Snapshot summary.",
                  MetricsRegistry::Kind::Summary);
  registry.collector([](std::vector<Sample>& out) {
    out.push_back({"wsc_snap_total", {}, 7});
    out.push_back({"wsc_snap_ns_sum", {}, 100});
    out.push_back({"wsc_snap_ns_count", {}, 4});
    out.push_back({"wsc_undeclared", {}, 1});  // becomes an implicit gauge
  });
  std::string text = registry.prometheus_text();
  EXPECT_NE(text.find("# TYPE wsc_snap_total counter\nwsc_snap_total 7\n"),
            std::string::npos);
  // _sum/_count attach to the declared summary family, not a new one.
  EXPECT_NE(text.find("# TYPE wsc_snap_ns summary\n"), std::string::npos);
  EXPECT_NE(text.find("wsc_snap_ns_sum 100\n"), std::string::npos);
  EXPECT_NE(text.find("wsc_snap_ns_count 4\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE wsc_undeclared gauge\nwsc_undeclared 1\n"),
            std::string::npos);
  EXPECT_EQ(validate_prometheus_text(text), std::nullopt);
}

TEST(MetricsTest, FamiliesSortedByName) {
  MetricsRegistry registry;
  registry.counter("wsc_zzz_total", "z").inc();
  registry.counter("wsc_aaa_total", "a").inc();
  std::string text = registry.prometheus_text();
  EXPECT_LT(text.find("wsc_aaa_total"), text.find("wsc_zzz_total"));
}

TEST(MetricsTest, TracerMetricsExport) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    CallTrace trace(tracer, "GoogleSearch", "doGoogleSearch");
    trace.set_representation("XML message");
    trace.set_outcome(Outcome::Hit);
    trace.add_stage(Stage::KeyGen, 100);
    trace.add_stage(Stage::Retrieve, 900);
  }
  MetricsRegistry registry;
  register_tracer_metrics(registry, tracer);
  std::string text = registry.prometheus_text();
  EXPECT_NE(
      text.find("wsc_calls_total{service=\"GoogleSearch\","
                "operation=\"doGoogleSearch\",representation=\"XML message\","
                "outcome=\"hit\"} 1\n"),
      std::string::npos);
  EXPECT_NE(text.find("wsc_stage_ns_total{"), std::string::npos);
  EXPECT_NE(text.find("stage=\"keygen\"} 100\n"), std::string::npos);
  EXPECT_NE(text.find("stage=\"retrieve\"} 900\n"), std::string::npos);
  EXPECT_NE(text.find("wsc_call_ns_count{"), std::string::npos);
  EXPECT_EQ(validate_prometheus_text(text), std::nullopt);
  // Stages that never ran are not exported.
  EXPECT_EQ(text.find("stage=\"backoff\""), std::string::npos);
}

TEST(PromcheckTest, AcceptsCanonicalOutput) {
  EXPECT_EQ(validate_prometheus_text("# HELP m help\n# TYPE m counter\nm 1\n"),
            std::nullopt);
  // An empty scrape is flagged — it almost always means a broken exporter.
  EXPECT_EQ(validate_prometheus_text(""), "empty exposition");
}

TEST(PromcheckTest, RejectsStructuralErrors) {
  // Missing trailing newline.
  EXPECT_NE(validate_prometheus_text("m 1"), std::nullopt);
  // Bad metric name.
  EXPECT_NE(validate_prometheus_text("1m 1\n"), std::nullopt);
  // Unknown TYPE.
  EXPECT_NE(validate_prometheus_text("# TYPE m widget\nm 1\n"), std::nullopt);
  // Duplicate TYPE line.
  EXPECT_NE(
      validate_prometheus_text("# TYPE m counter\n# TYPE m counter\nm 1\n"),
      std::nullopt);
  // Unquoted label value.
  EXPECT_NE(validate_prometheus_text("m{a=b} 1\n"), std::nullopt);
  // Bad escape in a label value.
  EXPECT_NE(validate_prometheus_text("m{a=\"\\q\"} 1\n"), std::nullopt);
  // Non-numeric value.
  EXPECT_NE(validate_prometheus_text("m pancake\n"), std::nullopt);
  // Duplicate series.
  EXPECT_NE(validate_prometheus_text("m 1\nm 2\n"), std::nullopt);
}

TEST(PromcheckTest, AcceptsSpecialValuesAndTimestamps) {
  EXPECT_EQ(validate_prometheus_text("m NaN\n"), std::nullopt);
  EXPECT_EQ(validate_prometheus_text("m +Inf\n"), std::nullopt);
  EXPECT_EQ(validate_prometheus_text("m 1 1712345678\n"), std::nullopt);
  EXPECT_NE(validate_prometheus_text("m 1 not_a_ts\n"), std::nullopt);
}

}  // namespace
}  // namespace wsc::obs
