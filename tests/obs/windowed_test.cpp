// Windowed aggregation edge cases, driven by an injectable clock: bucket
// rotation across window boundaries, reads racing rotation, reclaim after
// long idle gaps, and empty-window percentiles.
#include "obs/windowed.hpp"

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "obs/promcheck.hpp"

namespace wsc::obs {
namespace {

constexpr std::uint64_t kSec = 1'000'000'000ull;

/// 4 buckets x 1s = a 4s window, clocked by hand.
WindowOptions manual_window(const std::uint64_t* now) {
  WindowOptions w;
  w.buckets = 4;
  w.bucket_width = std::chrono::seconds(1);
  w.now = [now] { return *now; };
  return w;
}

TEST(WindowedCounterTest, LifetimeExactWindowRolls) {
  std::uint64_t now = 0;
  WindowedCounter c{manual_window(&now)};
  c.inc(3);
  EXPECT_EQ(c.value(), 3u);
  EXPECT_EQ(c.windowed(), 3u);

  now = 2 * kSec;  // still inside the 4s window
  c.inc(2);
  EXPECT_EQ(c.value(), 5u);
  EXPECT_EQ(c.windowed(), 5u);

  now = 4 * kSec;  // the t=0 bucket just fell out
  EXPECT_EQ(c.windowed(), 2u);
  now = 7 * kSec;  // everything out
  EXPECT_EQ(c.windowed(), 0u);
  EXPECT_EQ(c.value(), 5u);  // lifetime unaffected by rotation
}

TEST(WindowedCounterTest, RotationAcrossEveryBoundary) {
  std::uint64_t now = 0;
  WindowedCounter c{manual_window(&now)};
  // One inc per second for 8 seconds: the window must always report
  // exactly the last 4 of them, through two full ring wraps.
  for (int s = 0; s < 8; ++s) {
    now = s * kSec;
    c.inc();
    const std::uint64_t expect = s < 4 ? s + 1 : 4;
    EXPECT_EQ(c.windowed(), expect) << "second " << s;
  }
  EXPECT_EQ(c.value(), 8u);
}

TEST(WindowedCounterTest, ReclaimAfterLongIdleGap) {
  std::uint64_t now = 0;
  WindowedCounter c{manual_window(&now)};
  c.inc(100);
  now = 1000 * kSec;  // idle far longer than the whole window
  EXPECT_EQ(c.windowed(), 0u);
  c.inc(7);  // must reclaim a stale bucket, not add to it
  EXPECT_EQ(c.windowed(), 7u);
  EXPECT_EQ(c.value(), 107u);
}

TEST(WindowedCounterTest, ScrapeDuringRotationSeesStableBuckets) {
  std::uint64_t now = 0;
  WindowedCounter c{manual_window(&now)};
  c.inc(5);
  // A reader whose `now` lags the writer's (scrape racing rotation): the
  // t=0 bucket is within ITS window either way; a bucket stamped in the
  // future of the reader's clock must not be double-dropped or negated.
  now = 1 * kSec;
  c.inc(2);
  EXPECT_EQ(c.windowed(0), 5u);        // lagging reader: future bucket excluded
  EXPECT_EQ(c.windowed(1 * kSec), 7u); // current reader: both
  // Reads never mutate: repeated scrapes agree.
  EXPECT_EQ(c.windowed(0), 5u);
}

TEST(WindowedSummaryTest, EmptyWindowPercentilesAreZero) {
  std::uint64_t now = 0;
  WindowedSummary s{5, manual_window(&now)};
  s.record(1000);
  now = 100 * kSec;
  util::Histogram window = s.windowed_snapshot();
  EXPECT_EQ(window.count(), 0u);
  EXPECT_EQ(window.percentile(0.5), 0u);
  EXPECT_EQ(window.percentile(0.999), 0u);
  // Lifetime still has the sample.
  EXPECT_EQ(s.snapshot().count(), 1u);
}

TEST(WindowedSummaryTest, WindowRotationKeepsOnlyRecentSamples) {
  std::uint64_t now = 0;
  WindowedSummary s{5, manual_window(&now)};
  for (int sec = 0; sec < 6; ++sec) {
    now = sec * kSec;
    s.record(100 * (sec + 1));
  }
  // Window covers seconds 2..5 -> samples 300..600.
  util::Histogram window = s.windowed_snapshot();
  EXPECT_EQ(window.count(), 4u);
  EXPECT_GE(window.percentile(0.01), 300u * 90 / 100);  // log-bucket slack
  EXPECT_EQ(s.snapshot().count(), 6u);
}

TEST(WindowedSummaryTest, SlotReuseAfterWrapIsClean) {
  std::uint64_t now = 0;
  WindowedSummary s{5, manual_window(&now)};
  s.record(1'000'000);
  now = 50 * kSec;
  s.record(8);
  util::Histogram window = s.windowed_snapshot();
  EXPECT_EQ(window.count(), 1u);
  // The reclaimed slot must not leak the old 1ms sample into the window.
  EXPECT_LE(window.percentile(0.999), 16u);
}

TEST(WindowedRegistryTest, ExportsWindowedTwinsAndP999) {
  std::uint64_t now = 0;
  MetricsRegistry registry{manual_window(&now)};
  Counter& c = registry.counter("wsc_hits_total", "Hits.");
  Summary& s = registry.summary("wsc_lat_ns", "Latency.");
  c.inc(10);
  for (std::uint64_t v = 1; v <= 100; ++v) s.record(v);

  std::string text = registry.prometheus_text();
  EXPECT_EQ(validate_prometheus_text(text), std::nullopt);
  // 4 x 1s window -> "_last4s" twins.
  EXPECT_NE(text.find("wsc_hits_last4s 10\n"), std::string::npos);
  EXPECT_NE(text.find("wsc_lat_ns_last4s_count 100\n"), std::string::npos);
  EXPECT_NE(text.find("wsc_lat_ns{quantile=\"0.999\"} "), std::string::npos);
  EXPECT_NE(text.find("wsc_lat_ns_last4s{quantile=\"0.999\"} "),
            std::string::npos);

  // Advance past the window: twins go quiet, lifetime families persist.
  now = 60 * kSec;
  text = registry.prometheus_text();
  EXPECT_EQ(validate_prometheus_text(text), std::nullopt);
  EXPECT_NE(text.find("wsc_hits_last4s 0\n"), std::string::npos);
  EXPECT_NE(text.find("wsc_hits_total 10\n"), std::string::npos);
  EXPECT_NE(text.find("wsc_lat_ns_last4s_count 0\n"), std::string::npos);
  EXPECT_NE(text.find("wsc_lat_ns_count 100\n"), std::string::npos);
}

}  // namespace
}  // namespace wsc::obs
