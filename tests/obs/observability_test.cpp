// End-to-end observability: the client middleware's CallTrace wiring, the
// cache/retry metric bridges, and the portal's /stats + /metrics admin
// endpoints.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/client.hpp"
#include "core/metrics_bridge.hpp"
#include "http/client.hpp"
#include "http/server.hpp"
#include "obs/metrics.hpp"
#include "obs/promcheck.hpp"
#include "obs/trace.hpp"
#include "portal/portal.hpp"
#include "services/google/service.hpp"
#include "tests/soap/test_service.hpp"
#include "transport/inproc_transport.hpp"
#include "transport/retry.hpp"

namespace wsc {
namespace {

using cache::CachingServiceClient;
using cache::ResponseCache;
using reflect::Object;
using soap::Parameter;
using wsc::soap::testing::make_test_service;
using wsc::soap::testing::test_description;

constexpr const char* kEndpoint = "inproc://svc/test";

/// Scoped enable of the PROCESS tracer (the client binds to obs::tracer()),
/// reset on both ends so tests stay independent.
struct ScopedTracer {
  ScopedTracer() {
    obs::tracer().reset();
    obs::tracer().set_enabled(true);
    obs::tracer().set_sample_every(1);
  }
  ~ScopedTracer() {
    obs::tracer().set_enabled(false);
    obs::tracer().reset();
  }
};

CachingServiceClient make_client(CachingServiceClient::Options options,
                                 std::shared_ptr<ResponseCache> cache = nullptr) {
  auto transport = std::make_shared<transport::InProcessTransport>();
  transport->bind(kEndpoint, make_test_service());
  if (!cache) cache = std::make_shared<ResponseCache>();
  return CachingServiceClient(std::move(transport), test_description(),
                              kEndpoint, std::move(cache), std::move(options));
}

cache::CachePolicy cacheable_policy() {
  cache::OperationPolicy p;
  p.cacheable = true;
  p.ttl = std::chrono::minutes(5);
  p.representation = cache::Representation::XmlMessage;
  cache::CachePolicy policy;
  policy.set("echoString", p);
  return policy;
}

TEST(ObservabilityTest, ClientTracesMissThenHit) {
  ScopedTracer scoped;
  CachingServiceClient::Options options;
  options.policy = cacheable_policy();
  CachingServiceClient client = make_client(options);
  client.invoke("echoString", {{"s", Object::make(std::string("x"))}});
  client.invoke("echoString", {{"s", Object::make(std::string("x"))}});

  obs::TraceSummary summary = obs::tracer().snapshot();
  const obs::GroupSummary* miss = summary.find("echoString", obs::Outcome::Miss);
  ASSERT_NE(miss, nullptr);
  EXPECT_EQ(miss->calls, 1u);
  EXPECT_EQ(miss->labels.service, "TestService");
  EXPECT_EQ(miss->labels.representation, "XML message");
  // The miss ran the full pipeline: key, lookup, wire, parse, deserialize,
  // store — and never the hit-only retrieve.
  for (obs::Stage s : {obs::Stage::KeyGen, obs::Stage::Lookup, obs::Stage::Wire,
                       obs::Stage::Parse, obs::Stage::Deserialize,
                       obs::Stage::Store})
    EXPECT_EQ(miss->stage(s).count, 1u) << obs::stage_name(s);
  EXPECT_EQ(miss->stage(obs::Stage::Retrieve).count, 0u);
  EXPECT_EQ(miss->stage(obs::Stage::Backoff).count, 0u);

  const obs::GroupSummary* hit = summary.find("echoString", obs::Outcome::Hit);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->calls, 1u);
  for (obs::Stage s :
       {obs::Stage::KeyGen, obs::Stage::Lookup, obs::Stage::Retrieve})
    EXPECT_EQ(hit->stage(s).count, 1u) << obs::stage_name(s);
  EXPECT_EQ(hit->stage(obs::Stage::Wire).count, 0u);

  // The stage decomposition never exceeds the traced end-to-end time.
  for (const obs::GroupSummary* g : {miss, hit})
    EXPECT_LE(g->mean_stage_sum_ns(), g->mean_total_ns() * 1.05);
}

TEST(ObservabilityTest, UncacheableOutcomeTraced) {
  ScopedTracer scoped;
  CachingServiceClient::Options options;  // default policy: nothing cacheable
  CachingServiceClient client = make_client(options);
  client.invoke("echoString", {{"s", Object::make(std::string("x"))}});
  obs::TraceSummary summary = obs::tracer().snapshot();
  const obs::GroupSummary* g =
      summary.find("echoString", obs::Outcome::Uncacheable);
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->stage(obs::Stage::Wire).count, 1u);
  EXPECT_EQ(g->stage(obs::Stage::KeyGen).count, 0u);  // bypassed the cache
}

TEST(ObservabilityTest, DisabledTracerLeavesNoGroups) {
  obs::tracer().reset();
  ASSERT_FALSE(obs::tracer().enabled());
  CachingServiceClient::Options options;
  options.policy = cacheable_policy();
  CachingServiceClient client = make_client(options);
  client.invoke("echoString", {{"s", Object::make(std::string("x"))}});
  EXPECT_TRUE(obs::tracer().snapshot().groups.empty());
}

TEST(ObservabilityTest, CacheMetricsMatchSnapshot) {
  auto cache = std::make_shared<ResponseCache>();
  CachingServiceClient::Options options;
  options.policy = cacheable_policy();
  CachingServiceClient client = make_client(options, cache);
  client.invoke("echoString", {{"s", Object::make(std::string("x"))}});
  client.invoke("echoString", {{"s", Object::make(std::string("x"))}});

  obs::MetricsRegistry registry;
  cache::register_cache_metrics(registry, *cache, {{"cache", "test"}});
  std::string text = registry.prometheus_text();
  EXPECT_NE(text.find("wsc_cache_hits_total{cache=\"test\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("wsc_cache_misses_total{cache=\"test\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("wsc_cache_stores_total{cache=\"test\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("wsc_cache_entries{cache=\"test\"} 1\n"),
            std::string::npos);
  EXPECT_EQ(obs::validate_prometheus_text(text), std::nullopt);
}

TEST(ObservabilityTest, RetryMetricsExport) {
  auto inner = std::make_shared<transport::InProcessTransport>();
  inner->bind(kEndpoint, make_test_service());
  transport::RetryingTransport transport(inner, transport::RetryPolicy{});
  obs::MetricsRegistry registry;
  transport::register_retry_metrics(registry, transport);
  std::string text = registry.prometheus_text();
  EXPECT_NE(text.find("wsc_retry_attempts_total 0\n"), std::string::npos);
  EXPECT_NE(text.find("wsc_retry_budget_tokens 10\n"), std::string::npos);
  EXPECT_EQ(obs::validate_prometheus_text(text), std::nullopt);
}

TEST(ObservabilityTest, StatsJsonCarriesEveryCounter) {
  cache::StatsSnapshot s;
  s.hits = 3;
  s.misses = 1;
  s.rejected_stores = 2;
  s.entries = 5;
  s.bytes = 640;
  std::string json = cache::stats_json(s);
  EXPECT_NE(json.find("\"hits\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"misses\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"rejected_stores\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"entries\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"bytes\": 640"), std::string::npos);
  EXPECT_NE(json.find("\"hit_ratio\": 0.75"), std::string::npos);
}

using portal::PortalSite;

PortalSite make_portal() {
  auto transport = std::make_shared<transport::InProcessTransport>();
  transport->bind("inproc://google/api",
                  services::google::make_google_service(
                      std::make_shared<services::google::GoogleBackend>()));
  portal::PortalConfig config;
  config.backend_endpoint = "inproc://google/api";
  config.transport = transport;
  config.options.policy = services::google::default_google_policy(
      cache::Representation::XmlMessage);
  return portal::PortalSite(std::move(config));
}

TEST(ObservabilityTest, PortalStatsEndpointMatchesSnapshot) {
  PortalSite portal = make_portal();
  http::HttpServer server(0, portal.handler());
  server.start();
  http::HttpConnection conn("127.0.0.1", server.port());

  http::Request page;
  page.target = "/portal?q=caching";
  EXPECT_EQ(conn.round_trip(page).status, 200);
  EXPECT_EQ(conn.round_trip(page).status, 200);

  http::Request stats;
  stats.target = "/stats";
  http::Response response = conn.round_trip(stats);
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(*response.headers.get("Content-Type"), "application/json");
  // Quiesced: the body must equal the snapshot rendered now.
  EXPECT_EQ(response.body, cache::stats_json(portal.response_cache().stats()));
  EXPECT_NE(response.body.find("\"hits\": 1"), std::string::npos);
  EXPECT_NE(response.body.find("\"misses\": 1"), std::string::npos);
  server.stop();
}

TEST(ObservabilityTest, PortalMetricsEndpointIsValidExposition) {
  ScopedTracer scoped;
  PortalSite portal = make_portal();
  http::HttpServer server(0, portal.handler());
  server.start();
  http::HttpConnection conn("127.0.0.1", server.port());

  http::Request page;
  page.target = "/portal?q=caching";
  EXPECT_EQ(conn.round_trip(page).status, 200);
  EXPECT_EQ(conn.round_trip(page).status, 200);

  http::Request metrics;
  metrics.target = "/metrics";
  http::Response response = conn.round_trip(metrics);
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(*response.headers.get("Content-Type"),
            "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_EQ(obs::validate_prometheus_text(response.body), std::nullopt);
  // The default portal registry bridges both the cache and the tracer.
  EXPECT_NE(response.body.find("wsc_cache_hits_total 1\n"), std::string::npos);
  EXPECT_NE(
      response.body.find("wsc_calls_total{service=\"GoogleSearchService\""),
      std::string::npos);
  EXPECT_NE(response.body.find("outcome=\"hit\""), std::string::npos);
  server.stop();
}

TEST(ObservabilityTest, PortalAcceptsExternalRegistry) {
  auto registry = std::make_shared<obs::MetricsRegistry>();
  registry->counter("wsc_custom_total", "Custom.").inc(9);
  auto transport = std::make_shared<transport::InProcessTransport>();
  transport->bind("inproc://google/api",
                  services::google::make_google_service(
                      std::make_shared<services::google::GoogleBackend>()));
  portal::PortalConfig config;
  config.backend_endpoint = "inproc://google/api";
  config.transport = transport;
  config.metrics = registry;
  portal::PortalSite portal(std::move(config));
  EXPECT_EQ(&portal.metrics(), registry.get());

  http::Request metrics;
  metrics.target = "/metrics";
  http::Response response = portal.handler()(metrics);
  EXPECT_NE(response.body.find("wsc_custom_total 9\n"), std::string::npos);
}

}  // namespace
}  // namespace wsc
