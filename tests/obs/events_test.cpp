// EventLog: ring wrap, sequence numbering, min_seq filtering, per-kind
// counters, and the /events JSON shape.
#include "obs/events.hpp"

#include <gtest/gtest.h>

#include "util/json.hpp"

namespace wsc::obs {
namespace {

TEST(EventLogTest, EmitAndSnapshotRoundTrip) {
  EventLog log(8);
  log.emit(EventKind::BreakerOpen, "transport", "tripped", 3);
  log.emit(EventKind::StaleServe, "Svc.op", "served stale", 1500);

  std::vector<Event> events = log.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_EQ(events[0].kind, EventKind::BreakerOpen);
  EXPECT_EQ(events[0].scope, "transport");
  EXPECT_EQ(events[0].detail, "tripped");
  EXPECT_EQ(events[0].value, 3u);
  EXPECT_EQ(events[1].seq, 2u);
  EXPECT_LE(events[0].ts_ns, events[1].ts_ns);
  EXPECT_EQ(log.total_emitted(), 2u);
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(EventLogTest, RingWrapDropsOldestKeepsSeq) {
  EventLog log(4);
  for (int i = 1; i <= 6; ++i)
    log.emit(EventKind::SlowCall, "s", "e" + std::to_string(i),
             static_cast<std::uint64_t>(i));
  std::vector<Event> events = log.snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().seq, 3u);  // 1 and 2 overwritten
  EXPECT_EQ(events.back().seq, 6u);
  EXPECT_EQ(events.back().detail, "e6");
  EXPECT_EQ(log.total_emitted(), 6u);
  EXPECT_EQ(log.dropped(), 2u);
}

TEST(EventLogTest, MinSeqFiltersAlreadySeenEvents) {
  EventLog log(8);
  for (int i = 0; i < 5; ++i) log.emit(EventKind::Lifecycle, "s", "d");
  EXPECT_EQ(log.snapshot(3).size(), 2u);   // seq 4, 5
  EXPECT_EQ(log.snapshot(5).size(), 0u);
  EXPECT_EQ(log.snapshot(99).size(), 0u);  // past the end: empty, not UB
}

TEST(EventLogTest, PerKindCounters) {
  EventLog log(8);
  log.emit(EventKind::EvictionBurst, "cache", "x", 12);
  log.emit(EventKind::EvictionBurst, "cache", "y", 9);
  log.emit(EventKind::DeadlineHit, "transport", "z");
  EXPECT_EQ(log.count(EventKind::EvictionBurst), 2u);
  EXPECT_EQ(log.count(EventKind::DeadlineHit), 1u);
  EXPECT_EQ(log.count(EventKind::BreakerOpen), 0u);
}

TEST(EventLogTest, JsonIsParsableAndLimited) {
  EventLog log(16);
  for (int i = 1; i <= 10; ++i)
    log.emit(EventKind::SlowCall, "Svc.op", "call " + std::to_string(i),
             static_cast<std::uint64_t>(i) * 100);

  util::json::Value doc = util::json::parse(log.json(/*limit=*/4));
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.number_or("dropped"), 0);
  const util::json::Value* events = doc.find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 4u);  // newest 4, oldest first
  EXPECT_EQ(events->array.front().number_or("seq"), 7);
  EXPECT_EQ(events->array.back().number_or("seq"), 10);
  EXPECT_EQ(events->array.back().string_or("kind"), "slow_call");
  EXPECT_EQ(events->array.back().string_or("scope"), "Svc.op");
  EXPECT_EQ(events->array.back().number_or("value"), 1000);
  EXPECT_GE(events->array.back().number_or("age_ms"), 0);
}

TEST(EventLogTest, StringEscapingSurvivesJson) {
  EventLog log(4);
  log.emit(EventKind::Lifecycle, "a\"b", "line1\nline2");
  util::json::Value doc = util::json::parse(log.json());
  const util::json::Value* events = doc.find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 1u);
  EXPECT_EQ(events->array[0].string_or("scope"), "a\"b");
  EXPECT_EQ(events->array[0].string_or("detail"), "line1\nline2");
}

TEST(EventLogTest, ClearResetsEverything) {
  EventLog log(4);
  for (int i = 0; i < 6; ++i) log.emit(EventKind::BreakerProbe, "t", "d");
  log.clear();
  EXPECT_TRUE(log.snapshot().empty());
  EXPECT_EQ(log.total_emitted(), 0u);
  EXPECT_EQ(log.dropped(), 0u);
  EXPECT_EQ(log.count(EventKind::BreakerProbe), 0u);
  log.emit(EventKind::BreakerProbe, "t", "d");
  EXPECT_EQ(log.snapshot().front().seq, 1u);  // numbering restarts
}

TEST(EventLogTest, ProcessWideSingletonIsStable) {
  EventLog& a = event_log();
  EventLog& b = event_log();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.capacity(), 256u);
}

}  // namespace
}  // namespace wsc::obs
