// The torn-snapshot regression test: ResponseCache::stats() must report
// entries and bytes from ONE per-shard pass, so the pair can never
// disagree while writers hammer the table.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/response_cache.hpp"
#include "reflect/object.hpp"

namespace wsc::cache {
namespace {

using std::chrono::minutes;

/// Every entry charges exactly `bytes`; with fixed-width keys the whole
/// table satisfies bytes_used == entry_count * (key_size + kValueBytes).
class FixedSizeValue final : public CachedValue {
 public:
  static constexpr std::size_t kBytes = 64;
  reflect::Object retrieve() const override {
    return reflect::Object::make(std::int32_t{0});
  }
  Representation representation() const override {
    return Representation::Reference;
  }
  std::size_t memory_size() const override { return kBytes; }
};

CacheKey fixed_key(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "k%07d", i);  // all keys the same length
  return CacheKey(buf);
}

TEST(StatsConsistencyTest, FootprintPairNeverTearsUnderHammering) {
  ResponseCache::Config config;
  config.shards = 8;
  ResponseCache cache(config);
  const std::size_t per_entry =
      fixed_key(0).memory_size() + FixedSizeValue::kBytes;

  std::atomic<bool> stop{false};
  constexpr int kWriters = 4;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&cache, w, &stop] {
      // Distinct key ranges per writer: stores and invalidates churn the
      // entry count and byte total together, never independently.
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        int k = w * 100000 + (i % 512);
        if (i % 3 == 2) {
          cache.invalidate(fixed_key(k));
        } else {
          cache.store(fixed_key(k), std::make_shared<FixedSizeValue>(),
                      minutes(5));
        }
        ++i;
      }
    });
  }

  // Reader: with the one-pass footprint, bytes must always be an exact
  // multiple of the per-entry cost matching the entry count.  The old
  // two-pass snapshot tore here within a few thousand iterations.
  int checks = 0;
  for (int i = 0; i < 20000; ++i) {
    StatsSnapshot s = cache.stats();
    ASSERT_EQ(s.bytes, s.entries * per_entry)
        << "torn snapshot: entries=" << s.entries << " bytes=" << s.bytes;
    ++checks;
  }
  stop.store(true);
  for (auto& t : writers) t.join();
  EXPECT_EQ(checks, 20000);

  // Quiesced cross-check against the direct accessors.
  ResponseCache::Footprint f = cache.footprint();
  EXPECT_EQ(f.entries, cache.entry_count());
  EXPECT_EQ(f.bytes, cache.bytes_used());
  EXPECT_EQ(f.bytes, f.entries * per_entry);
}

TEST(StatsConsistencyTest, FootprintSumsAcrossShards) {
  ResponseCache::Config config;
  config.shards = 4;
  ResponseCache cache(config);
  for (int i = 0; i < 100; ++i)
    cache.store(fixed_key(i), std::make_shared<FixedSizeValue>(), minutes(5));
  ResponseCache::Footprint f = cache.footprint();
  EXPECT_EQ(f.entries, 100u);
  EXPECT_EQ(f.bytes,
            100u * (fixed_key(0).memory_size() + FixedSizeValue::kBytes));
}

}  // namespace
}  // namespace wsc::cache
