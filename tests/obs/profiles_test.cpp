// CostProfiles: direct recording semantics, the middleware feed
// (hit/miss/deserialize/store/bytes per representation), slow-call
// events, and the portal's /profiles + /events endpoints.
#include "obs/profiles.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/client.hpp"
#include "http/client.hpp"
#include "http/server.hpp"
#include "obs/events.hpp"
#include "portal/portal.hpp"
#include "services/google/service.hpp"
#include "tests/soap/test_service.hpp"
#include "transport/inproc_transport.hpp"
#include "util/json.hpp"

namespace wsc {
namespace {

using cache::CachingServiceClient;
using cache::ResponseCache;
using obs::CostProfiles;
using reflect::Object;
using wsc::soap::testing::make_test_service;
using wsc::soap::testing::test_description;

constexpr const char* kEndpoint = "inproc://svc/test";

TEST(CostProfilesTest, DirectRecordingComputesRatiosAndBytes) {
  CostProfiles profiles;
  for (int i = 0; i < 3; ++i)
    profiles.record_hit("Svc", "op", "XML message", 1000 + i * 100);
  profiles.record_miss("Svc", "op", "XML message", /*deserialize_ns=*/5000,
                       /*store_ns=*/2000, /*bytes=*/640);
  profiles.record_miss("Svc", "op", "XML message", 7000, 0, 0);  // not stored
  profiles.record_stale("Svc", "op", "XML message");

  std::vector<CostProfiles::Row> rows = profiles.snapshot();
  ASSERT_EQ(rows.size(), 1u);
  const CostProfiles::Row& row = rows[0];
  EXPECT_EQ(row.service, "Svc");
  EXPECT_EQ(row.operation, "op");
  EXPECT_EQ(row.representation, "XML message");
  EXPECT_EQ(row.hits, 3u);
  EXPECT_EQ(row.misses, 2u);
  EXPECT_EQ(row.stale_serves, 1u);
  EXPECT_DOUBLE_EQ(row.hit_ratio, 3.0 / 5.0);
  EXPECT_EQ(row.hit_ns.count, 3u);
  EXPECT_GT(row.hit_ns.mean_ns, 0);
  EXPECT_GT(row.hit_ns.p999_ns, 0);
  EXPECT_EQ(row.deserialize_ns.count, 2u);  // every miss deserializes
  EXPECT_EQ(row.store_ns.count, 1u);        // only the stored one
  EXPECT_EQ(row.stored_entries, 1u);
  EXPECT_EQ(row.bytes_sum, 640u);
  EXPECT_DOUBLE_EQ(row.bytes_per_entry, 640.0);
  // Everything just recorded is inside the rolling window.
  EXPECT_EQ(row.window_hits, 3u);
  EXPECT_EQ(row.window_misses, 2u);
  EXPECT_DOUBLE_EQ(row.window_hit_ratio, 3.0 / 5.0);
}

TEST(CostProfilesTest, SampledHitWeightKeepsRatiosUnbiased) {
  CostProfiles profiles;
  profiles.record_hit("Svc", "op", "Pass by reference", 500, /*weight=*/64);
  profiles.record_miss("Svc", "op", "Pass by reference", 100, 100, 32);
  std::vector<CostProfiles::Row> rows = profiles.snapshot();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].hits, 64u);         // weighted count
  EXPECT_EQ(rows[0].hit_ns.count, 1u);  // one latency sample
  EXPECT_DOUBLE_EQ(rows[0].hit_ratio, 64.0 / 65.0);
}

TEST(CostProfilesTest, JsonRowsParse) {
  CostProfiles profiles;
  profiles.record_hit("Svc", "op", "Pass by reference", 1200);
  profiles.record_miss("Svc", "op", "Pass by reference", 3000, 900, 128);
  util::json::Value rows = util::json::parse(profiles.json_rows());
  ASSERT_TRUE(rows.is_array());
  ASSERT_EQ(rows.array.size(), 1u);
  const util::json::Value& row = rows.array[0];
  EXPECT_EQ(row.string_or("service"), "Svc");
  EXPECT_EQ(row.string_or("representation"), "Pass by reference");
  EXPECT_EQ(row.number_or("hits"), 1);
  EXPECT_EQ(row.number_or("misses"), 1);
  EXPECT_EQ(row.number_or("bytes_per_entry"), 128);
  const util::json::Value* hit = row.find("hit");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->number_or("count"), 1);
  EXPECT_GT(hit->number_or("p99_ns"), 0);
  ASSERT_NE(row.find("store"), nullptr);
  ASSERT_NE(row.find("deserialize"), nullptr);
}

CachingServiceClient::Options profiled_options(
    std::shared_ptr<CostProfiles> profiles,
    cache::Representation rep = cache::Representation::XmlMessage) {
  cache::OperationPolicy p;
  p.cacheable = true;
  p.ttl = std::chrono::minutes(5);
  p.representation = rep;
  CachingServiceClient::Options options;
  options.policy.set("echoString", p);
  options.profiles = std::move(profiles);
  options.profile_sample_every = 1;  // deterministic: every hit records
  return options;
}

CachingServiceClient make_client(CachingServiceClient::Options options) {
  auto transport = std::make_shared<transport::InProcessTransport>();
  transport->bind(kEndpoint, make_test_service());
  return CachingServiceClient(std::move(transport), test_description(),
                              kEndpoint, std::make_shared<ResponseCache>(),
                              std::move(options));
}

TEST(CostProfilesTest, MiddlewareFeedsMissThenHit) {
  auto profiles = std::make_shared<CostProfiles>();
  CachingServiceClient client = make_client(profiled_options(profiles));
  client.invoke("echoString", {{"s", Object::make(std::string("x"))}});
  client.invoke("echoString", {{"s", Object::make(std::string("x"))}});

  std::vector<CostProfiles::Row> rows = profiles->snapshot();
  ASSERT_EQ(rows.size(), 1u);
  const CostProfiles::Row& row = rows[0];
  EXPECT_EQ(row.service, "TestService");
  EXPECT_EQ(row.operation, "echoString");
  EXPECT_EQ(row.representation, "XML message");
  EXPECT_EQ(row.hits, 1u);
  EXPECT_EQ(row.misses, 1u);
  EXPECT_EQ(row.hit_ns.count, 1u);
  EXPECT_EQ(row.deserialize_ns.count, 1u);
  EXPECT_EQ(row.store_ns.count, 1u);
  EXPECT_EQ(row.stored_entries, 1u);
  EXPECT_GT(row.bytes_per_entry, 0);
}

TEST(CostProfilesTest, RowsSplitPerRepresentation) {
  // Two clients (distinct caches) sharing one registry: the same operation
  // under two representations yields two rows — the comparison the
  // adaptive-selection policy will consume.
  auto profiles = std::make_shared<CostProfiles>();
  CachingServiceClient xml = make_client(
      profiled_options(profiles, cache::Representation::XmlMessage));
  CachingServiceClient ref = make_client(
      profiled_options(profiles, cache::Representation::Reference));
  for (int i = 0; i < 2; ++i) {
    xml.invoke("echoString", {{"s", Object::make(std::string("x"))}});
    ref.invoke("echoString", {{"s", Object::make(std::string("x"))}});
  }

  std::vector<CostProfiles::Row> rows = profiles->snapshot();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].representation, "Pass by reference");
  EXPECT_EQ(rows[1].representation, "XML message");
  for (const CostProfiles::Row& row : rows) {
    EXPECT_EQ(row.hits, 1u) << row.representation;
    EXPECT_EQ(row.misses, 1u) << row.representation;
  }
}

TEST(CostProfilesTest, SlowMissEmitsSlowCallEvent) {
  auto profiles = std::make_shared<CostProfiles>();
  CachingServiceClient::Options options = profiled_options(profiles);
  options.slow_call_threshold_ns = 1;  // every miss is "slow"
  const std::uint64_t before = obs::event_log().count(obs::EventKind::SlowCall);
  CachingServiceClient client = make_client(std::move(options));
  client.invoke("echoString", {{"s", Object::make(std::string("x"))}});
  client.invoke("echoString", {{"s", Object::make(std::string("x"))}});
  // Exactly the miss tripped the watchdog; the hit path never checks.
  EXPECT_EQ(obs::event_log().count(obs::EventKind::SlowCall), before + 1);
}

TEST(PortalTelemetryTest, ProfilesAndEventsEndpoints) {
  auto transport = std::make_shared<transport::InProcessTransport>();
  transport->bind("inproc://google/api",
                  services::google::make_google_service(
                      std::make_shared<services::google::GoogleBackend>()));
  portal::PortalConfig config;
  config.backend_endpoint = "inproc://google/api";
  config.transport = transport;
  config.options.policy = services::google::default_google_policy(
      cache::Representation::XmlMessage);
  portal::PortalSite portal(std::move(config));
  http::HttpServer server(0, portal.handler());
  server.start();
  http::HttpConnection conn("127.0.0.1", server.port());

  http::Request page;
  page.target = "/portal?q=caching";
  EXPECT_EQ(conn.round_trip(page).status, 200);
  EXPECT_EQ(conn.round_trip(page).status, 200);

  http::Request profiles_req;
  profiles_req.target = "/profiles";
  http::Response profiles_resp = conn.round_trip(profiles_req);
  EXPECT_EQ(profiles_resp.status, 200);
  EXPECT_EQ(*profiles_resp.headers.get("Content-Type"), "application/json");
  util::json::Value doc = util::json::parse(profiles_resp.body);
  EXPECT_EQ(doc.string_or("window"), "60s");
  const util::json::Value* rows = doc.find("rows");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->array.size(), 1u);
  EXPECT_EQ(rows->array[0].string_or("service"), "GoogleSearchService");
  EXPECT_EQ(rows->array[0].string_or("operation"), "doGoogleSearch");
  EXPECT_EQ(rows->array[0].number_or("hits"), 1);
  EXPECT_EQ(rows->array[0].number_or("misses"), 1);
  // Hot-key tracking is on (sample 1): the doGoogleSearch key shows up.
  const util::json::Value* hot = doc.find("hot_keys");
  ASSERT_NE(hot, nullptr);
  ASSERT_FALSE(hot->array.empty());
  EXPECT_GE(hot->array[0].number_or("count"), 2);
  const util::json::Value* cache_info = doc.find("cache");
  ASSERT_NE(cache_info, nullptr);
  EXPECT_EQ(cache_info->number_or("entries"), 1);
  EXPECT_GT(cache_info->number_or("bytes"), 0);

  http::Request events_req;
  events_req.target = "/events";
  http::Response events_resp = conn.round_trip(events_req);
  EXPECT_EQ(events_resp.status, 200);
  EXPECT_EQ(*events_resp.headers.get("Content-Type"), "application/json");
  util::json::Value events = util::json::parse(events_resp.body);
  const util::json::Value* list = events.find("events");
  ASSERT_NE(list, nullptr);
  // At minimum the portal's own lifecycle event is in the ring.
  bool lifecycle = false;
  for (const util::json::Value& e : list->array)
    lifecycle = lifecycle || e.string_or("kind") == "lifecycle";
  EXPECT_TRUE(lifecycle);
  server.stop();
}

TEST(PortalTelemetryTest, MetricsCarryProcessBuildAndWindowedSeries) {
  auto transport = std::make_shared<transport::InProcessTransport>();
  transport->bind("inproc://google/api",
                  services::google::make_google_service(
                      std::make_shared<services::google::GoogleBackend>()));
  portal::PortalConfig config;
  config.backend_endpoint = "inproc://google/api";
  config.transport = transport;
  portal::PortalSite portal(std::move(config));

  http::Request page;
  page.target = "/portal?q=x";
  EXPECT_EQ(portal.handler()(page).status, 200);

  http::Request metrics;
  metrics.target = "/metrics";
  std::string body = portal.handler()(metrics).body;
  EXPECT_NE(body.find("process_start_time_seconds "), std::string::npos);
  EXPECT_NE(body.find("wsc_build_info{"), std::string::npos);
  EXPECT_NE(body.find("wsc_events_total{kind=\"lifecycle\"}"),
            std::string::npos);
  // The portal's own request summary guarantees owned windowed series.
  EXPECT_NE(body.find("wsc_portal_request_ns_count 1"), std::string::npos);
  EXPECT_NE(body.find("wsc_portal_request_ns_last60s_count 1"),
            std::string::npos);
  EXPECT_NE(body.find("wsc_portal_request_ns{quantile=\"0.999\"}"),
            std::string::npos);
}

}  // namespace
}  // namespace wsc
