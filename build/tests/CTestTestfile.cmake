# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_tests[1]_include.cmake")
include("/root/repo/build/tests/xml_tests[1]_include.cmake")
include("/root/repo/build/tests/reflect_tests[1]_include.cmake")
include("/root/repo/build/tests/soap_wsdl_tests[1]_include.cmake")
include("/root/repo/build/tests/transport_tests[1]_include.cmake")
include("/root/repo/build/tests/http_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/services_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
