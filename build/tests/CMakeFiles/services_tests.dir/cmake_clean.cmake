file(REMOVE_RECURSE
  "CMakeFiles/services_tests.dir/services/amazon_test.cpp.o"
  "CMakeFiles/services_tests.dir/services/amazon_test.cpp.o.d"
  "CMakeFiles/services_tests.dir/services/feeds_test.cpp.o"
  "CMakeFiles/services_tests.dir/services/feeds_test.cpp.o.d"
  "CMakeFiles/services_tests.dir/services/google_test.cpp.o"
  "CMakeFiles/services_tests.dir/services/google_test.cpp.o.d"
  "services_tests"
  "services_tests.pdb"
  "services_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/services_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
