file(REMOVE_RECURSE
  "CMakeFiles/util_tests.dir/util/base64_test.cpp.o"
  "CMakeFiles/util_tests.dir/util/base64_test.cpp.o.d"
  "CMakeFiles/util_tests.dir/util/byte_buffer_test.cpp.o"
  "CMakeFiles/util_tests.dir/util/byte_buffer_test.cpp.o.d"
  "CMakeFiles/util_tests.dir/util/clock_test.cpp.o"
  "CMakeFiles/util_tests.dir/util/clock_test.cpp.o.d"
  "CMakeFiles/util_tests.dir/util/file_store_test.cpp.o"
  "CMakeFiles/util_tests.dir/util/file_store_test.cpp.o.d"
  "CMakeFiles/util_tests.dir/util/hash_test.cpp.o"
  "CMakeFiles/util_tests.dir/util/hash_test.cpp.o.d"
  "CMakeFiles/util_tests.dir/util/histogram_test.cpp.o"
  "CMakeFiles/util_tests.dir/util/histogram_test.cpp.o.d"
  "CMakeFiles/util_tests.dir/util/random_test.cpp.o"
  "CMakeFiles/util_tests.dir/util/random_test.cpp.o.d"
  "CMakeFiles/util_tests.dir/util/strings_test.cpp.o"
  "CMakeFiles/util_tests.dir/util/strings_test.cpp.o.d"
  "CMakeFiles/util_tests.dir/util/thread_pool_test.cpp.o"
  "CMakeFiles/util_tests.dir/util/thread_pool_test.cpp.o.d"
  "CMakeFiles/util_tests.dir/util/uri_test.cpp.o"
  "CMakeFiles/util_tests.dir/util/uri_test.cpp.o.d"
  "util_tests"
  "util_tests.pdb"
  "util_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
