
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/base64_test.cpp" "tests/CMakeFiles/util_tests.dir/util/base64_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/base64_test.cpp.o.d"
  "/root/repo/tests/util/byte_buffer_test.cpp" "tests/CMakeFiles/util_tests.dir/util/byte_buffer_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/byte_buffer_test.cpp.o.d"
  "/root/repo/tests/util/clock_test.cpp" "tests/CMakeFiles/util_tests.dir/util/clock_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/clock_test.cpp.o.d"
  "/root/repo/tests/util/file_store_test.cpp" "tests/CMakeFiles/util_tests.dir/util/file_store_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/file_store_test.cpp.o.d"
  "/root/repo/tests/util/hash_test.cpp" "tests/CMakeFiles/util_tests.dir/util/hash_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/hash_test.cpp.o.d"
  "/root/repo/tests/util/histogram_test.cpp" "tests/CMakeFiles/util_tests.dir/util/histogram_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/histogram_test.cpp.o.d"
  "/root/repo/tests/util/random_test.cpp" "tests/CMakeFiles/util_tests.dir/util/random_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/random_test.cpp.o.d"
  "/root/repo/tests/util/strings_test.cpp" "tests/CMakeFiles/util_tests.dir/util/strings_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/strings_test.cpp.o.d"
  "/root/repo/tests/util/thread_pool_test.cpp" "tests/CMakeFiles/util_tests.dir/util/thread_pool_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/thread_pool_test.cpp.o.d"
  "/root/repo/tests/util/uri_test.cpp" "tests/CMakeFiles/util_tests.dir/util/uri_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/uri_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/portal/CMakeFiles/wsc_portal.dir/DependInfo.cmake"
  "/root/repo/build/src/services/CMakeFiles/wsc_services.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wsc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/wsc_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/wsc_http.dir/DependInfo.cmake"
  "/root/repo/build/src/soap/CMakeFiles/wsc_soap.dir/DependInfo.cmake"
  "/root/repo/build/src/wsdl/CMakeFiles/wsc_wsdl.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/wsc_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/reflect/CMakeFiles/wsc_reflect.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wsc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
