file(REMOVE_RECURSE
  "CMakeFiles/http_tests.dir/http/cache_headers_test.cpp.o"
  "CMakeFiles/http_tests.dir/http/cache_headers_test.cpp.o.d"
  "CMakeFiles/http_tests.dir/http/message_test.cpp.o"
  "CMakeFiles/http_tests.dir/http/message_test.cpp.o.d"
  "CMakeFiles/http_tests.dir/http/parser_property_test.cpp.o"
  "CMakeFiles/http_tests.dir/http/parser_property_test.cpp.o.d"
  "CMakeFiles/http_tests.dir/http/parser_test.cpp.o"
  "CMakeFiles/http_tests.dir/http/parser_test.cpp.o.d"
  "CMakeFiles/http_tests.dir/http/robustness_test.cpp.o"
  "CMakeFiles/http_tests.dir/http/robustness_test.cpp.o.d"
  "CMakeFiles/http_tests.dir/http/server_client_test.cpp.o"
  "CMakeFiles/http_tests.dir/http/server_client_test.cpp.o.d"
  "http_tests"
  "http_tests.pdb"
  "http_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
