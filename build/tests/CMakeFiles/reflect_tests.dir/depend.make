# Empty dependencies file for reflect_tests.
# This may be replaced when dependencies are built.
