file(REMOVE_RECURSE
  "CMakeFiles/reflect_tests.dir/reflect/algorithms_test.cpp.o"
  "CMakeFiles/reflect_tests.dir/reflect/algorithms_test.cpp.o.d"
  "CMakeFiles/reflect_tests.dir/reflect/registry_test.cpp.o"
  "CMakeFiles/reflect_tests.dir/reflect/registry_test.cpp.o.d"
  "CMakeFiles/reflect_tests.dir/reflect/roundtrip_property_test.cpp.o"
  "CMakeFiles/reflect_tests.dir/reflect/roundtrip_property_test.cpp.o.d"
  "CMakeFiles/reflect_tests.dir/reflect/serialize_test.cpp.o"
  "CMakeFiles/reflect_tests.dir/reflect/serialize_test.cpp.o.d"
  "reflect_tests"
  "reflect_tests.pdb"
  "reflect_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reflect_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
