# Empty dependencies file for soap_wsdl_tests.
# This may be replaced when dependencies are built.
