file(REMOVE_RECURSE
  "CMakeFiles/soap_wsdl_tests.dir/soap/deserializer_test.cpp.o"
  "CMakeFiles/soap_wsdl_tests.dir/soap/deserializer_test.cpp.o.d"
  "CMakeFiles/soap_wsdl_tests.dir/soap/dispatcher_test.cpp.o"
  "CMakeFiles/soap_wsdl_tests.dir/soap/dispatcher_test.cpp.o.d"
  "CMakeFiles/soap_wsdl_tests.dir/soap/multiref_test.cpp.o"
  "CMakeFiles/soap_wsdl_tests.dir/soap/multiref_test.cpp.o.d"
  "CMakeFiles/soap_wsdl_tests.dir/soap/roundtrip_property_test.cpp.o"
  "CMakeFiles/soap_wsdl_tests.dir/soap/roundtrip_property_test.cpp.o.d"
  "CMakeFiles/soap_wsdl_tests.dir/soap/serializer_test.cpp.o"
  "CMakeFiles/soap_wsdl_tests.dir/soap/serializer_test.cpp.o.d"
  "CMakeFiles/soap_wsdl_tests.dir/soap/value_reader_test.cpp.o"
  "CMakeFiles/soap_wsdl_tests.dir/soap/value_reader_test.cpp.o.d"
  "CMakeFiles/soap_wsdl_tests.dir/wsdl/description_test.cpp.o"
  "CMakeFiles/soap_wsdl_tests.dir/wsdl/description_test.cpp.o.d"
  "CMakeFiles/soap_wsdl_tests.dir/wsdl/wsdl_writer_test.cpp.o"
  "CMakeFiles/soap_wsdl_tests.dir/wsdl/wsdl_writer_test.cpp.o.d"
  "soap_wsdl_tests"
  "soap_wsdl_tests.pdb"
  "soap_wsdl_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soap_wsdl_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
