file(REMOVE_RECURSE
  "CMakeFiles/integration_tests.dir/integration/concurrency_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/concurrency_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/end_to_end_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/end_to_end_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/portal/load_sim_test.cpp.o"
  "CMakeFiles/integration_tests.dir/portal/load_sim_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/portal/portal_test.cpp.o"
  "CMakeFiles/integration_tests.dir/portal/portal_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/portal/query_string_test.cpp.o"
  "CMakeFiles/integration_tests.dir/portal/query_string_test.cpp.o.d"
  "integration_tests"
  "integration_tests.pdb"
  "integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
