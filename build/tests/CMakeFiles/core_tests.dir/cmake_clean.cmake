file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/cache_key_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/cache_key_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/cached_value_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/cached_value_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/client_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/client_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/policy_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/policy_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/representation_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/representation_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/response_cache_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/response_cache_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/revalidation_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/revalidation_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/sharding_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/sharding_test.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
