file(REMOVE_RECURSE
  "CMakeFiles/wsdl_export.dir/wsdl_export.cpp.o"
  "CMakeFiles/wsdl_export.dir/wsdl_export.cpp.o.d"
  "wsdl_export"
  "wsdl_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsdl_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
