# Empty compiler generated dependencies file for wsdl_export.
# This may be replaced when dependencies are built.
