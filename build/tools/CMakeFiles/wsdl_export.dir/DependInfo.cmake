
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/wsdl_export.cpp" "tools/CMakeFiles/wsdl_export.dir/wsdl_export.cpp.o" "gcc" "tools/CMakeFiles/wsdl_export.dir/wsdl_export.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/services/CMakeFiles/wsc_services.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wsc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/wsc_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/wsc_http.dir/DependInfo.cmake"
  "/root/repo/build/src/soap/CMakeFiles/wsc_soap.dir/DependInfo.cmake"
  "/root/repo/build/src/wsdl/CMakeFiles/wsc_wsdl.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/wsc_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/reflect/CMakeFiles/wsc_reflect.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wsc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
