# Empty compiler generated dependencies file for soapcall.
# This may be replaced when dependencies are built.
