# Empty dependencies file for serve_services.
# This may be replaced when dependencies are built.
