file(REMOVE_RECURSE
  "CMakeFiles/serve_services.dir/serve_services.cpp.o"
  "CMakeFiles/serve_services.dir/serve_services.cpp.o.d"
  "serve_services"
  "serve_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
