# Empty dependencies file for bench_table8_keysize.
# This may be replaced when dependencies are built.
