file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_keysize.dir/bench_table8_keysize.cpp.o"
  "CMakeFiles/bench_table8_keysize.dir/bench_table8_keysize.cpp.o.d"
  "bench_table8_keysize"
  "bench_table8_keysize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_keysize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
