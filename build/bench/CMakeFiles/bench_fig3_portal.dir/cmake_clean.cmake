file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_portal.dir/bench_fig3_portal.cpp.o"
  "CMakeFiles/bench_fig3_portal.dir/bench_fig3_portal.cpp.o.d"
  "bench_fig3_portal"
  "bench_fig3_portal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_portal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
