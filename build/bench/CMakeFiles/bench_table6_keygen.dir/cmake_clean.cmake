file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_keygen.dir/bench_table6_keygen.cpp.o"
  "CMakeFiles/bench_table6_keygen.dir/bench_table6_keygen.cpp.o.d"
  "bench_table6_keygen"
  "bench_table6_keygen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_keygen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
