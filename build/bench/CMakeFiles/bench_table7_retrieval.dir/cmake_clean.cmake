file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_retrieval.dir/bench_table7_retrieval.cpp.o"
  "CMakeFiles/bench_table7_retrieval.dir/bench_table7_retrieval.cpp.o.d"
  "bench_table7_retrieval"
  "bench_table7_retrieval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_retrieval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
