# Empty compiler generated dependencies file for bench_ablation_diskstore.
# This may be replaced when dependencies are built.
