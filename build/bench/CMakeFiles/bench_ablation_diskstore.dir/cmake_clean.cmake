file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_diskstore.dir/bench_ablation_diskstore.cpp.o"
  "CMakeFiles/bench_ablation_diskstore.dir/bench_ablation_diskstore.cpp.o.d"
  "bench_ablation_diskstore"
  "bench_ablation_diskstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_diskstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
