file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_valuesize.dir/bench_table9_valuesize.cpp.o"
  "CMakeFiles/bench_table9_valuesize.dir/bench_table9_valuesize.cpp.o.d"
  "bench_table9_valuesize"
  "bench_table9_valuesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_valuesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
