# Empty dependencies file for bench_table9_valuesize.
# This may be replaced when dependencies are built.
