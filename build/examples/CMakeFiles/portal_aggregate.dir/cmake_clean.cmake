file(REMOVE_RECURSE
  "CMakeFiles/portal_aggregate.dir/portal_aggregate.cpp.o"
  "CMakeFiles/portal_aggregate.dir/portal_aggregate.cpp.o.d"
  "portal_aggregate"
  "portal_aggregate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portal_aggregate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
