# Empty compiler generated dependencies file for portal_aggregate.
# This may be replaced when dependencies are built.
