file(REMOVE_RECURSE
  "CMakeFiles/portal_site.dir/portal_site.cpp.o"
  "CMakeFiles/portal_site.dir/portal_site.cpp.o.d"
  "portal_site"
  "portal_site.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portal_site.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
