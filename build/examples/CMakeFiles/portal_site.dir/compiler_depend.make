# Empty compiler generated dependencies file for portal_site.
# This may be replaced when dependencies are built.
