file(REMOVE_RECURSE
  "CMakeFiles/amazon_policy.dir/amazon_policy.cpp.o"
  "CMakeFiles/amazon_policy.dir/amazon_policy.cpp.o.d"
  "amazon_policy"
  "amazon_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amazon_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
