# Empty compiler generated dependencies file for amazon_policy.
# This may be replaced when dependencies are built.
