
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/base64.cpp" "src/util/CMakeFiles/wsc_util.dir/base64.cpp.o" "gcc" "src/util/CMakeFiles/wsc_util.dir/base64.cpp.o.d"
  "/root/repo/src/util/byte_buffer.cpp" "src/util/CMakeFiles/wsc_util.dir/byte_buffer.cpp.o" "gcc" "src/util/CMakeFiles/wsc_util.dir/byte_buffer.cpp.o.d"
  "/root/repo/src/util/clock.cpp" "src/util/CMakeFiles/wsc_util.dir/clock.cpp.o" "gcc" "src/util/CMakeFiles/wsc_util.dir/clock.cpp.o.d"
  "/root/repo/src/util/file_store.cpp" "src/util/CMakeFiles/wsc_util.dir/file_store.cpp.o" "gcc" "src/util/CMakeFiles/wsc_util.dir/file_store.cpp.o.d"
  "/root/repo/src/util/hash.cpp" "src/util/CMakeFiles/wsc_util.dir/hash.cpp.o" "gcc" "src/util/CMakeFiles/wsc_util.dir/hash.cpp.o.d"
  "/root/repo/src/util/histogram.cpp" "src/util/CMakeFiles/wsc_util.dir/histogram.cpp.o" "gcc" "src/util/CMakeFiles/wsc_util.dir/histogram.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/util/CMakeFiles/wsc_util.dir/logging.cpp.o" "gcc" "src/util/CMakeFiles/wsc_util.dir/logging.cpp.o.d"
  "/root/repo/src/util/random.cpp" "src/util/CMakeFiles/wsc_util.dir/random.cpp.o" "gcc" "src/util/CMakeFiles/wsc_util.dir/random.cpp.o.d"
  "/root/repo/src/util/strings.cpp" "src/util/CMakeFiles/wsc_util.dir/strings.cpp.o" "gcc" "src/util/CMakeFiles/wsc_util.dir/strings.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/util/CMakeFiles/wsc_util.dir/thread_pool.cpp.o" "gcc" "src/util/CMakeFiles/wsc_util.dir/thread_pool.cpp.o.d"
  "/root/repo/src/util/uri.cpp" "src/util/CMakeFiles/wsc_util.dir/uri.cpp.o" "gcc" "src/util/CMakeFiles/wsc_util.dir/uri.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
