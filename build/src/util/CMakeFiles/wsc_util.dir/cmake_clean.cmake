file(REMOVE_RECURSE
  "CMakeFiles/wsc_util.dir/base64.cpp.o"
  "CMakeFiles/wsc_util.dir/base64.cpp.o.d"
  "CMakeFiles/wsc_util.dir/byte_buffer.cpp.o"
  "CMakeFiles/wsc_util.dir/byte_buffer.cpp.o.d"
  "CMakeFiles/wsc_util.dir/clock.cpp.o"
  "CMakeFiles/wsc_util.dir/clock.cpp.o.d"
  "CMakeFiles/wsc_util.dir/file_store.cpp.o"
  "CMakeFiles/wsc_util.dir/file_store.cpp.o.d"
  "CMakeFiles/wsc_util.dir/hash.cpp.o"
  "CMakeFiles/wsc_util.dir/hash.cpp.o.d"
  "CMakeFiles/wsc_util.dir/histogram.cpp.o"
  "CMakeFiles/wsc_util.dir/histogram.cpp.o.d"
  "CMakeFiles/wsc_util.dir/logging.cpp.o"
  "CMakeFiles/wsc_util.dir/logging.cpp.o.d"
  "CMakeFiles/wsc_util.dir/random.cpp.o"
  "CMakeFiles/wsc_util.dir/random.cpp.o.d"
  "CMakeFiles/wsc_util.dir/strings.cpp.o"
  "CMakeFiles/wsc_util.dir/strings.cpp.o.d"
  "CMakeFiles/wsc_util.dir/thread_pool.cpp.o"
  "CMakeFiles/wsc_util.dir/thread_pool.cpp.o.d"
  "CMakeFiles/wsc_util.dir/uri.cpp.o"
  "CMakeFiles/wsc_util.dir/uri.cpp.o.d"
  "libwsc_util.a"
  "libwsc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
