file(REMOVE_RECURSE
  "libwsc_wsdl.a"
)
