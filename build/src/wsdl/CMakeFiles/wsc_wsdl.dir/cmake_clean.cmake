file(REMOVE_RECURSE
  "CMakeFiles/wsc_wsdl.dir/description.cpp.o"
  "CMakeFiles/wsc_wsdl.dir/description.cpp.o.d"
  "CMakeFiles/wsc_wsdl.dir/wsdl_writer.cpp.o"
  "CMakeFiles/wsc_wsdl.dir/wsdl_writer.cpp.o.d"
  "libwsc_wsdl.a"
  "libwsc_wsdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsc_wsdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
