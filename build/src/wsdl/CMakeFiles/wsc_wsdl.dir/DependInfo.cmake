
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wsdl/description.cpp" "src/wsdl/CMakeFiles/wsc_wsdl.dir/description.cpp.o" "gcc" "src/wsdl/CMakeFiles/wsc_wsdl.dir/description.cpp.o.d"
  "/root/repo/src/wsdl/wsdl_writer.cpp" "src/wsdl/CMakeFiles/wsc_wsdl.dir/wsdl_writer.cpp.o" "gcc" "src/wsdl/CMakeFiles/wsc_wsdl.dir/wsdl_writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/reflect/CMakeFiles/wsc_reflect.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/wsc_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wsc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
