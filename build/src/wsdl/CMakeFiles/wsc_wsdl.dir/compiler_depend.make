# Empty compiler generated dependencies file for wsc_wsdl.
# This may be replaced when dependencies are built.
