file(REMOVE_RECURSE
  "libwsc_portal.a"
)
