file(REMOVE_RECURSE
  "CMakeFiles/wsc_portal.dir/load_sim.cpp.o"
  "CMakeFiles/wsc_portal.dir/load_sim.cpp.o.d"
  "CMakeFiles/wsc_portal.dir/portal.cpp.o"
  "CMakeFiles/wsc_portal.dir/portal.cpp.o.d"
  "CMakeFiles/wsc_portal.dir/query_string.cpp.o"
  "CMakeFiles/wsc_portal.dir/query_string.cpp.o.d"
  "libwsc_portal.a"
  "libwsc_portal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsc_portal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
