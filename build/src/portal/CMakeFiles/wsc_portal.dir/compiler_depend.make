# Empty compiler generated dependencies file for wsc_portal.
# This may be replaced when dependencies are built.
