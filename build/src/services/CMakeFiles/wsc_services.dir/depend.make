# Empty dependencies file for wsc_services.
# This may be replaced when dependencies are built.
