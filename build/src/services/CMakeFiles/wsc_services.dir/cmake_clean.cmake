file(REMOVE_RECURSE
  "CMakeFiles/wsc_services.dir/amazon/service.cpp.o"
  "CMakeFiles/wsc_services.dir/amazon/service.cpp.o.d"
  "CMakeFiles/wsc_services.dir/amazon/types.cpp.o"
  "CMakeFiles/wsc_services.dir/amazon/types.cpp.o.d"
  "CMakeFiles/wsc_services.dir/google/service.cpp.o"
  "CMakeFiles/wsc_services.dir/google/service.cpp.o.d"
  "CMakeFiles/wsc_services.dir/google/stub.cpp.o"
  "CMakeFiles/wsc_services.dir/google/stub.cpp.o.d"
  "CMakeFiles/wsc_services.dir/google/types.cpp.o"
  "CMakeFiles/wsc_services.dir/google/types.cpp.o.d"
  "CMakeFiles/wsc_services.dir/news/service.cpp.o"
  "CMakeFiles/wsc_services.dir/news/service.cpp.o.d"
  "CMakeFiles/wsc_services.dir/quotes/service.cpp.o"
  "CMakeFiles/wsc_services.dir/quotes/service.cpp.o.d"
  "libwsc_services.a"
  "libwsc_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsc_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
