file(REMOVE_RECURSE
  "libwsc_services.a"
)
