
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/services/amazon/service.cpp" "src/services/CMakeFiles/wsc_services.dir/amazon/service.cpp.o" "gcc" "src/services/CMakeFiles/wsc_services.dir/amazon/service.cpp.o.d"
  "/root/repo/src/services/amazon/types.cpp" "src/services/CMakeFiles/wsc_services.dir/amazon/types.cpp.o" "gcc" "src/services/CMakeFiles/wsc_services.dir/amazon/types.cpp.o.d"
  "/root/repo/src/services/google/service.cpp" "src/services/CMakeFiles/wsc_services.dir/google/service.cpp.o" "gcc" "src/services/CMakeFiles/wsc_services.dir/google/service.cpp.o.d"
  "/root/repo/src/services/google/stub.cpp" "src/services/CMakeFiles/wsc_services.dir/google/stub.cpp.o" "gcc" "src/services/CMakeFiles/wsc_services.dir/google/stub.cpp.o.d"
  "/root/repo/src/services/google/types.cpp" "src/services/CMakeFiles/wsc_services.dir/google/types.cpp.o" "gcc" "src/services/CMakeFiles/wsc_services.dir/google/types.cpp.o.d"
  "/root/repo/src/services/news/service.cpp" "src/services/CMakeFiles/wsc_services.dir/news/service.cpp.o" "gcc" "src/services/CMakeFiles/wsc_services.dir/news/service.cpp.o.d"
  "/root/repo/src/services/quotes/service.cpp" "src/services/CMakeFiles/wsc_services.dir/quotes/service.cpp.o" "gcc" "src/services/CMakeFiles/wsc_services.dir/quotes/service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/wsc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/wsc_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/soap/CMakeFiles/wsc_soap.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/wsc_http.dir/DependInfo.cmake"
  "/root/repo/build/src/wsdl/CMakeFiles/wsc_wsdl.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/wsc_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/reflect/CMakeFiles/wsc_reflect.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wsc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
