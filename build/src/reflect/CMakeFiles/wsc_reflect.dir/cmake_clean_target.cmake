file(REMOVE_RECURSE
  "libwsc_reflect.a"
)
