file(REMOVE_RECURSE
  "CMakeFiles/wsc_reflect.dir/algorithms.cpp.o"
  "CMakeFiles/wsc_reflect.dir/algorithms.cpp.o.d"
  "CMakeFiles/wsc_reflect.dir/object.cpp.o"
  "CMakeFiles/wsc_reflect.dir/object.cpp.o.d"
  "CMakeFiles/wsc_reflect.dir/registry.cpp.o"
  "CMakeFiles/wsc_reflect.dir/registry.cpp.o.d"
  "CMakeFiles/wsc_reflect.dir/serialize.cpp.o"
  "CMakeFiles/wsc_reflect.dir/serialize.cpp.o.d"
  "CMakeFiles/wsc_reflect.dir/type_info.cpp.o"
  "CMakeFiles/wsc_reflect.dir/type_info.cpp.o.d"
  "libwsc_reflect.a"
  "libwsc_reflect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsc_reflect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
