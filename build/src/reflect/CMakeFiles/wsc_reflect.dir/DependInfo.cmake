
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reflect/algorithms.cpp" "src/reflect/CMakeFiles/wsc_reflect.dir/algorithms.cpp.o" "gcc" "src/reflect/CMakeFiles/wsc_reflect.dir/algorithms.cpp.o.d"
  "/root/repo/src/reflect/object.cpp" "src/reflect/CMakeFiles/wsc_reflect.dir/object.cpp.o" "gcc" "src/reflect/CMakeFiles/wsc_reflect.dir/object.cpp.o.d"
  "/root/repo/src/reflect/registry.cpp" "src/reflect/CMakeFiles/wsc_reflect.dir/registry.cpp.o" "gcc" "src/reflect/CMakeFiles/wsc_reflect.dir/registry.cpp.o.d"
  "/root/repo/src/reflect/serialize.cpp" "src/reflect/CMakeFiles/wsc_reflect.dir/serialize.cpp.o" "gcc" "src/reflect/CMakeFiles/wsc_reflect.dir/serialize.cpp.o.d"
  "/root/repo/src/reflect/type_info.cpp" "src/reflect/CMakeFiles/wsc_reflect.dir/type_info.cpp.o" "gcc" "src/reflect/CMakeFiles/wsc_reflect.dir/type_info.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wsc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
