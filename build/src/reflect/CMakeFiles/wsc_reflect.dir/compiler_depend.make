# Empty compiler generated dependencies file for wsc_reflect.
# This may be replaced when dependencies are built.
