file(REMOVE_RECURSE
  "CMakeFiles/wsc_http.dir/cache_headers.cpp.o"
  "CMakeFiles/wsc_http.dir/cache_headers.cpp.o.d"
  "CMakeFiles/wsc_http.dir/client.cpp.o"
  "CMakeFiles/wsc_http.dir/client.cpp.o.d"
  "CMakeFiles/wsc_http.dir/message.cpp.o"
  "CMakeFiles/wsc_http.dir/message.cpp.o.d"
  "CMakeFiles/wsc_http.dir/parser.cpp.o"
  "CMakeFiles/wsc_http.dir/parser.cpp.o.d"
  "CMakeFiles/wsc_http.dir/server.cpp.o"
  "CMakeFiles/wsc_http.dir/server.cpp.o.d"
  "CMakeFiles/wsc_http.dir/socket.cpp.o"
  "CMakeFiles/wsc_http.dir/socket.cpp.o.d"
  "libwsc_http.a"
  "libwsc_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsc_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
