# Empty compiler generated dependencies file for wsc_http.
# This may be replaced when dependencies are built.
