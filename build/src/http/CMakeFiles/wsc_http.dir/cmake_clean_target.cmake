file(REMOVE_RECURSE
  "libwsc_http.a"
)
