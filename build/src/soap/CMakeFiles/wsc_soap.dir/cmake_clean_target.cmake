file(REMOVE_RECURSE
  "libwsc_soap.a"
)
