
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/soap/deserializer.cpp" "src/soap/CMakeFiles/wsc_soap.dir/deserializer.cpp.o" "gcc" "src/soap/CMakeFiles/wsc_soap.dir/deserializer.cpp.o.d"
  "/root/repo/src/soap/dispatcher.cpp" "src/soap/CMakeFiles/wsc_soap.dir/dispatcher.cpp.o" "gcc" "src/soap/CMakeFiles/wsc_soap.dir/dispatcher.cpp.o.d"
  "/root/repo/src/soap/message.cpp" "src/soap/CMakeFiles/wsc_soap.dir/message.cpp.o" "gcc" "src/soap/CMakeFiles/wsc_soap.dir/message.cpp.o.d"
  "/root/repo/src/soap/serializer.cpp" "src/soap/CMakeFiles/wsc_soap.dir/serializer.cpp.o" "gcc" "src/soap/CMakeFiles/wsc_soap.dir/serializer.cpp.o.d"
  "/root/repo/src/soap/value_reader.cpp" "src/soap/CMakeFiles/wsc_soap.dir/value_reader.cpp.o" "gcc" "src/soap/CMakeFiles/wsc_soap.dir/value_reader.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wsdl/CMakeFiles/wsc_wsdl.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/wsc_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/reflect/CMakeFiles/wsc_reflect.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wsc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
