# Empty dependencies file for wsc_soap.
# This may be replaced when dependencies are built.
