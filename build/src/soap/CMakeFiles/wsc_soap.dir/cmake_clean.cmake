file(REMOVE_RECURSE
  "CMakeFiles/wsc_soap.dir/deserializer.cpp.o"
  "CMakeFiles/wsc_soap.dir/deserializer.cpp.o.d"
  "CMakeFiles/wsc_soap.dir/dispatcher.cpp.o"
  "CMakeFiles/wsc_soap.dir/dispatcher.cpp.o.d"
  "CMakeFiles/wsc_soap.dir/message.cpp.o"
  "CMakeFiles/wsc_soap.dir/message.cpp.o.d"
  "CMakeFiles/wsc_soap.dir/serializer.cpp.o"
  "CMakeFiles/wsc_soap.dir/serializer.cpp.o.d"
  "CMakeFiles/wsc_soap.dir/value_reader.cpp.o"
  "CMakeFiles/wsc_soap.dir/value_reader.cpp.o.d"
  "libwsc_soap.a"
  "libwsc_soap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsc_soap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
