file(REMOVE_RECURSE
  "CMakeFiles/wsc_core.dir/cache_key.cpp.o"
  "CMakeFiles/wsc_core.dir/cache_key.cpp.o.d"
  "CMakeFiles/wsc_core.dir/cached_value.cpp.o"
  "CMakeFiles/wsc_core.dir/cached_value.cpp.o.d"
  "CMakeFiles/wsc_core.dir/client.cpp.o"
  "CMakeFiles/wsc_core.dir/client.cpp.o.d"
  "CMakeFiles/wsc_core.dir/policy.cpp.o"
  "CMakeFiles/wsc_core.dir/policy.cpp.o.d"
  "CMakeFiles/wsc_core.dir/representation.cpp.o"
  "CMakeFiles/wsc_core.dir/representation.cpp.o.d"
  "CMakeFiles/wsc_core.dir/response_cache.cpp.o"
  "CMakeFiles/wsc_core.dir/response_cache.cpp.o.d"
  "CMakeFiles/wsc_core.dir/stats.cpp.o"
  "CMakeFiles/wsc_core.dir/stats.cpp.o.d"
  "libwsc_core.a"
  "libwsc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
