
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cache_key.cpp" "src/core/CMakeFiles/wsc_core.dir/cache_key.cpp.o" "gcc" "src/core/CMakeFiles/wsc_core.dir/cache_key.cpp.o.d"
  "/root/repo/src/core/cached_value.cpp" "src/core/CMakeFiles/wsc_core.dir/cached_value.cpp.o" "gcc" "src/core/CMakeFiles/wsc_core.dir/cached_value.cpp.o.d"
  "/root/repo/src/core/client.cpp" "src/core/CMakeFiles/wsc_core.dir/client.cpp.o" "gcc" "src/core/CMakeFiles/wsc_core.dir/client.cpp.o.d"
  "/root/repo/src/core/policy.cpp" "src/core/CMakeFiles/wsc_core.dir/policy.cpp.o" "gcc" "src/core/CMakeFiles/wsc_core.dir/policy.cpp.o.d"
  "/root/repo/src/core/representation.cpp" "src/core/CMakeFiles/wsc_core.dir/representation.cpp.o" "gcc" "src/core/CMakeFiles/wsc_core.dir/representation.cpp.o.d"
  "/root/repo/src/core/response_cache.cpp" "src/core/CMakeFiles/wsc_core.dir/response_cache.cpp.o" "gcc" "src/core/CMakeFiles/wsc_core.dir/response_cache.cpp.o.d"
  "/root/repo/src/core/stats.cpp" "src/core/CMakeFiles/wsc_core.dir/stats.cpp.o" "gcc" "src/core/CMakeFiles/wsc_core.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/transport/CMakeFiles/wsc_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/soap/CMakeFiles/wsc_soap.dir/DependInfo.cmake"
  "/root/repo/build/src/reflect/CMakeFiles/wsc_reflect.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wsc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/wsdl/CMakeFiles/wsc_wsdl.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/wsc_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/wsc_http.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
