file(REMOVE_RECURSE
  "CMakeFiles/wsc_xml.dir/dom.cpp.o"
  "CMakeFiles/wsc_xml.dir/dom.cpp.o.d"
  "CMakeFiles/wsc_xml.dir/escape.cpp.o"
  "CMakeFiles/wsc_xml.dir/escape.cpp.o.d"
  "CMakeFiles/wsc_xml.dir/event_sequence.cpp.o"
  "CMakeFiles/wsc_xml.dir/event_sequence.cpp.o.d"
  "CMakeFiles/wsc_xml.dir/sax_parser.cpp.o"
  "CMakeFiles/wsc_xml.dir/sax_parser.cpp.o.d"
  "CMakeFiles/wsc_xml.dir/writer.cpp.o"
  "CMakeFiles/wsc_xml.dir/writer.cpp.o.d"
  "libwsc_xml.a"
  "libwsc_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsc_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
