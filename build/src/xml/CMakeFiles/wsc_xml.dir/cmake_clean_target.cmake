file(REMOVE_RECURSE
  "libwsc_xml.a"
)
