# Empty dependencies file for wsc_xml.
# This may be replaced when dependencies are built.
