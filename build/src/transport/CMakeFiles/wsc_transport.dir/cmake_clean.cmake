file(REMOVE_RECURSE
  "CMakeFiles/wsc_transport.dir/http_transport.cpp.o"
  "CMakeFiles/wsc_transport.dir/http_transport.cpp.o.d"
  "CMakeFiles/wsc_transport.dir/inproc_transport.cpp.o"
  "CMakeFiles/wsc_transport.dir/inproc_transport.cpp.o.d"
  "CMakeFiles/wsc_transport.dir/soap_http.cpp.o"
  "CMakeFiles/wsc_transport.dir/soap_http.cpp.o.d"
  "CMakeFiles/wsc_transport.dir/transport.cpp.o"
  "CMakeFiles/wsc_transport.dir/transport.cpp.o.d"
  "libwsc_transport.a"
  "libwsc_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsc_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
