# Empty dependencies file for wsc_transport.
# This may be replaced when dependencies are built.
