file(REMOVE_RECURSE
  "libwsc_transport.a"
)
