
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/http_transport.cpp" "src/transport/CMakeFiles/wsc_transport.dir/http_transport.cpp.o" "gcc" "src/transport/CMakeFiles/wsc_transport.dir/http_transport.cpp.o.d"
  "/root/repo/src/transport/inproc_transport.cpp" "src/transport/CMakeFiles/wsc_transport.dir/inproc_transport.cpp.o" "gcc" "src/transport/CMakeFiles/wsc_transport.dir/inproc_transport.cpp.o.d"
  "/root/repo/src/transport/soap_http.cpp" "src/transport/CMakeFiles/wsc_transport.dir/soap_http.cpp.o" "gcc" "src/transport/CMakeFiles/wsc_transport.dir/soap_http.cpp.o.d"
  "/root/repo/src/transport/transport.cpp" "src/transport/CMakeFiles/wsc_transport.dir/transport.cpp.o" "gcc" "src/transport/CMakeFiles/wsc_transport.dir/transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/http/CMakeFiles/wsc_http.dir/DependInfo.cmake"
  "/root/repo/build/src/soap/CMakeFiles/wsc_soap.dir/DependInfo.cmake"
  "/root/repo/build/src/wsdl/CMakeFiles/wsc_wsdl.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/wsc_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/reflect/CMakeFiles/wsc_reflect.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wsc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
